#include "sefi/core/result_cache.hpp"

#include <gtest/gtest.h>

#include <filesystem>

namespace sefi::core {
namespace {

fi::WorkloadFiResult sample_fi_result() {
  fi::WorkloadFiResult result;
  result.workload = "CRC32";
  for (std::size_t i = 0; i < result.components.size(); ++i) {
    auto& comp = result.components[i];
    comp.component = static_cast<microarch::ComponentKind>(i);
    comp.bits = 1000 + i;
    comp.counts = {10 + i, 2, 3, 4};
    comp.error_margin = 0.01 * static_cast<double>(i + 1);
  }
  return result;
}

beam::BeamResult sample_beam_result() {
  beam::BeamResult result;
  result.workload = "FFT";
  result.runs = 600;
  result.sdc = 3;
  result.app_crash = 9;
  result.sys_crash = 27;
  result.strikes = 720;
  result.reboots = 27;
  result.exposure_seconds = 0.125;
  result.fluence_per_cm2 = 3.25e11;
  result.accel_flux_per_cm2_s = 2.6e12;
  return result;
}

TEST(Serialization, FiRoundTrip) {
  const fi::WorkloadFiResult original = sample_fi_result();
  const auto parsed = deserialize_fi(serialize(original));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->workload, original.workload);
  for (std::size_t i = 0; i < original.components.size(); ++i) {
    EXPECT_EQ(parsed->components[i].bits, original.components[i].bits);
    EXPECT_EQ(parsed->components[i].counts.masked,
              original.components[i].counts.masked);
    EXPECT_EQ(parsed->components[i].counts.sys_crash,
              original.components[i].counts.sys_crash);
    EXPECT_DOUBLE_EQ(parsed->components[i].error_margin,
                     original.components[i].error_margin);
  }
}

TEST(Serialization, BeamRoundTrip) {
  const beam::BeamResult original = sample_beam_result();
  const auto parsed = deserialize_beam(serialize(original));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->workload, original.workload);
  EXPECT_EQ(parsed->runs, original.runs);
  EXPECT_EQ(parsed->sdc, original.sdc);
  EXPECT_EQ(parsed->sys_crash, original.sys_crash);
  EXPECT_DOUBLE_EQ(parsed->fluence_per_cm2, original.fluence_per_cm2);
  EXPECT_DOUBLE_EQ(parsed->fit_sdc(), original.fit_sdc());
}

TEST(Serialization, RejectsGarbageAndWrongKind) {
  EXPECT_FALSE(deserialize_fi("nonsense").has_value());
  EXPECT_FALSE(deserialize_beam("nonsense").has_value());
  EXPECT_FALSE(deserialize_fi(serialize(sample_beam_result())).has_value());
  EXPECT_FALSE(deserialize_beam(serialize(sample_fi_result())).has_value());
}

TEST(Fingerprint, SensitiveToEveryKnob) {
  fi::CampaignConfig fi_config;
  const std::uint64_t base = fingerprint(fi_config);
  fi_config.faults_per_component += 1;
  EXPECT_NE(fingerprint(fi_config), base);
  fi_config.faults_per_component -= 1;
  fi_config.rig.uarch.l1d.size_bytes *= 2;
  EXPECT_NE(fingerprint(fi_config), base);

  beam::BeamConfig beam_config;
  const std::uint64_t beam_base = fingerprint(beam_config);
  beam_config.sigma_bit_cm2 *= 2;
  EXPECT_NE(fingerprint(beam_config), beam_base);
  beam_config.sigma_bit_cm2 /= 2;
  beam_config.platform.resources[0].p_sys_crash += 0.01;
  EXPECT_NE(fingerprint(beam_config), beam_base);
}

TEST(Fingerprint, StableForEqualConfigs) {
  fi::CampaignConfig a;
  fi::CampaignConfig b;
  EXPECT_EQ(fingerprint(a), fingerprint(b));
}

TEST(ResultCache, DisabledCacheNoOps) {
  const ResultCache cache("");
  EXPECT_FALSE(cache.enabled());
  cache.store("key", "value");
  EXPECT_FALSE(cache.load("key").has_value());
}

TEST(ResultCache, StoreAndLoadRoundTrip) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / "sefi-cache-test").string();
  std::filesystem::remove_all(dir);
  const ResultCache cache(dir);
  EXPECT_TRUE(cache.enabled());
  EXPECT_FALSE(cache.load("missing").has_value());
  cache.store("some-key", "payload\nlines\n");
  const auto loaded = cache.load("some-key");
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(*loaded, "payload\nlines\n");
  std::filesystem::remove_all(dir);
}

TEST(ResultCache, KeysEncodeKindWorkloadAndFingerprint) {
  const std::string key = ResultCache::make_key("fi", 0xabcd, "CRC32");
  EXPECT_NE(key.find("fi"), std::string::npos);
  EXPECT_NE(key.find("CRC32"), std::string::npos);
  EXPECT_NE(key.find("abcd"), std::string::npos);
  EXPECT_NE(key, ResultCache::make_key("beam", 0xabcd, "CRC32"));
}

}  // namespace
}  // namespace sefi::core
