#include "sefi/core/result_cache.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <thread>
#include <vector>

#include "../support_fastpath_scope.hpp"
#include "sefi/support/env.hpp"
#include "sefi/support/seal.hpp"

namespace sefi::core {
namespace {

namespace fs = std::filesystem;

/// Fresh cache directory per test; helpers for raw file manipulation
/// (the corruption suite works below the ResultCache API on purpose).
class CacheDirTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Per-test directory: ctest runs each test in its own parallel
    // process, so a shared path would race.
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    dir_ = (fs::temp_directory_path() /
            (std::string("sefi-cache-") + info->name())).string();
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  /// The pre-shard FLAT location of an entry — used to fabricate
  /// legacy-layout files; the cache's canonical (sharded) location is
  /// ResultCache::entry_path.
  std::string entry_path(const std::string& key) const {
    return dir_ + "/" + key + ".txt";
  }

  static void write_raw(const std::string& path, const std::string& bytes) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }

  static std::string read_raw(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    return std::string(std::istreambuf_iterator<char>(in), {});
  }

  std::string dir_;
};

fi::WorkloadFiResult sample_fi_result() {
  fi::WorkloadFiResult result;
  result.workload = "CRC32";
  for (std::size_t i = 0; i < result.components.size(); ++i) {
    auto& comp = result.components[i];
    comp.component = static_cast<microarch::ComponentKind>(i);
    comp.bits = 1000 + i;
    comp.counts = {10 + i, 2, 3, 4};
    comp.error_margin = 0.01 * static_cast<double>(i + 1);
  }
  return result;
}

beam::BeamResult sample_beam_result() {
  beam::BeamResult result;
  result.workload = "FFT";
  result.runs = 600;
  result.sdc = 3;
  result.app_crash = 9;
  result.sys_crash = 27;
  result.strikes = 720;
  result.reboots = 27;
  result.exposure_seconds = 0.125;
  result.fluence_per_cm2 = 3.25e11;
  result.accel_flux_per_cm2_s = 2.6e12;
  return result;
}

TEST(Serialization, FiRoundTrip) {
  const fi::WorkloadFiResult original = sample_fi_result();
  const auto parsed = deserialize_fi(serialize(original));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->workload, original.workload);
  for (std::size_t i = 0; i < original.components.size(); ++i) {
    EXPECT_EQ(parsed->components[i].bits, original.components[i].bits);
    EXPECT_EQ(parsed->components[i].counts.masked,
              original.components[i].counts.masked);
    EXPECT_EQ(parsed->components[i].counts.sys_crash,
              original.components[i].counts.sys_crash);
    EXPECT_DOUBLE_EQ(parsed->components[i].error_margin,
                     original.components[i].error_margin);
  }
}

TEST(Serialization, FiRoundTripPreservesHarnessErrors) {
  // Harness errors are part of a stored campaign result (they shrink the
  // sample a resume would otherwise re-run), so the v6 format must carry
  // them.
  fi::WorkloadFiResult original = sample_fi_result();
  original.components[2].counts.harness_error = 7;
  const auto parsed = deserialize_fi(serialize(original));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->components[2].counts.harness_error, 7u);
  EXPECT_EQ(parsed->components[0].counts.harness_error, 0u);
  EXPECT_EQ(parsed->components[2].counts.total(),
            original.components[2].counts.total());
  EXPECT_EQ(parsed->components[2].counts.attempted(),
            original.components[2].counts.attempted());
}

TEST(Serialization, FiRoundTripPreservesPruneTelemetry) {
  // Prune telemetry is part of a stored result: a cached pruned
  // campaign must replay with its strata and variance intact.
  fi::WorkloadFiResult original = sample_fi_result();
  original.components[1].pruned_masked = 9;
  original.components[1].live_sites = 11;
  original.components[1].estimator_variance = 1.25e-3;
  const auto parsed = deserialize_fi(serialize(original));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->components[1].pruned_masked, 9u);
  EXPECT_EQ(parsed->components[1].live_sites, 11u);
  EXPECT_DOUBLE_EQ(parsed->components[1].estimator_variance, 1.25e-3);
  EXPECT_EQ(parsed->components[0].pruned_masked, 0u);
  EXPECT_DOUBLE_EQ(parsed->components[0].estimator_variance, 0.0);
}

TEST(Serialization, FiRoundTripPreservesDetected) {
  // Detected verdicts (hardened workloads, DESIGN.md §15) are part of a
  // stored campaign result — they sit inside the AVF denominator, so a
  // replayed entry that dropped them would shift every rate.
  fi::WorkloadFiResult original = sample_fi_result();
  original.components[3].counts.detected = 5;
  const auto parsed = deserialize_fi(serialize(original));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->components[3].counts.detected, 5u);
  EXPECT_EQ(parsed->components[0].counts.detected, 0u);
  EXPECT_EQ(parsed->components[3].counts.total(),
            original.components[3].counts.total());
}

TEST(Serialization, FiRejectsPayloadWithoutDetectedField) {
  // A v8-tagged payload whose component lines lack the detected field
  // (e.g. a hand-upgraded v7 entry) must deserialize to a miss, never
  // to a result with fabricated zeros in a verdict class.
  std::string text = serialize(sample_fi_result());
  std::string::size_type at;
  while ((at = text.find(" detected 0")) != std::string::npos) {
    text.erase(at, std::string(" detected 0").size());
  }
  EXPECT_FALSE(deserialize_fi(text).has_value());
}

TEST(Serialization, BeamRejectsPayloadWithoutDetectedField) {
  std::string text = serialize(sample_beam_result());
  const auto at = text.find(" detected 0");
  ASSERT_NE(at, std::string::npos);
  text.erase(at, std::string(" detected 0").size());
  EXPECT_FALSE(deserialize_beam(text).has_value());
}

TEST(Serialization, BeamRoundTripPreservesDetected) {
  beam::BeamResult original = sample_beam_result();
  original.detected = 4;
  const auto parsed = deserialize_beam(serialize(original));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->detected, 4u);
  EXPECT_DOUBLE_EQ(parsed->fit_detected(), original.fit_detected());
  EXPECT_DOUBLE_EQ(parsed->fit_total(), original.fit_total());
}

TEST(Serialization, BeamRoundTrip) {
  const beam::BeamResult original = sample_beam_result();
  const auto parsed = deserialize_beam(serialize(original));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->workload, original.workload);
  EXPECT_EQ(parsed->runs, original.runs);
  EXPECT_EQ(parsed->sdc, original.sdc);
  EXPECT_EQ(parsed->sys_crash, original.sys_crash);
  EXPECT_DOUBLE_EQ(parsed->fluence_per_cm2, original.fluence_per_cm2);
  EXPECT_DOUBLE_EQ(parsed->fit_sdc(), original.fit_sdc());
}

TEST(Serialization, RejectsGarbageAndWrongKind) {
  EXPECT_FALSE(deserialize_fi("nonsense").has_value());
  EXPECT_FALSE(deserialize_beam("nonsense").has_value());
  EXPECT_FALSE(deserialize_fi(serialize(sample_beam_result())).has_value());
  EXPECT_FALSE(deserialize_beam(serialize(sample_fi_result())).has_value());
}

TEST(Fingerprint, SensitiveToEveryKnob) {
  fi::CampaignConfig fi_config;
  const std::uint64_t base = fingerprint(fi_config);
  fi_config.faults_per_component += 1;
  EXPECT_NE(fingerprint(fi_config), base);
  fi_config.faults_per_component -= 1;
  fi_config.rig.uarch.l1d.size_bytes *= 2;
  EXPECT_NE(fingerprint(fi_config), base);

  beam::BeamConfig beam_config;
  const std::uint64_t beam_base = fingerprint(beam_config);
  beam_config.sigma_bit_cm2 *= 2;
  EXPECT_NE(fingerprint(beam_config), beam_base);
  beam_config.sigma_bit_cm2 /= 2;
  beam_config.platform.resources[0].p_sys_crash += 0.01;
  EXPECT_NE(fingerprint(beam_config), beam_base);
}

TEST(Fingerprint, PruneModeIsCampaignIdentity) {
  // Mixing pruned and exhaustive campaigns through one cache entry must
  // be impossible: every prune mode fingerprints differently, even
  // kClassify whose counts are bit-identical to kOff.
  fi::CampaignConfig config;
  config.prune = fi::PruneMode::kOff;
  const std::uint64_t off = fingerprint(config);
  config.prune = fi::PruneMode::kClassify;
  const std::uint64_t classify = fingerprint(config);
  config.prune = fi::PruneMode::kSample;
  const std::uint64_t sample = fingerprint(config);
  EXPECT_NE(off, classify);
  EXPECT_NE(off, sample);
  EXPECT_NE(classify, sample);

  // The subsample fraction shapes results only under kSample, so only
  // there does it enter the fingerprint.
  config.prune_sample_fraction = 0.5;
  EXPECT_NE(fingerprint(config), sample);
  config.prune = fi::PruneMode::kOff;
  const std::uint64_t off_half = fingerprint(config);
  config.prune_sample_fraction = 0.25;
  EXPECT_EQ(fingerprint(config), off_half);
}

TEST(Fingerprint, HardenModeIsCampaignIdentityOnlyWhenOn) {
  // Hardened campaigns inject into a different guest binary, so every
  // protection level fingerprints apart — but SEFI_HARDEN=off must not
  // enter the hash at all, so pre-hardening cache entries (and the CI
  // bit-identity references) keep their fingerprints.
  fi::CampaignConfig fi_config;
  fi_config.rig.harden = harden::HardenMode::kOff;
  const std::uint64_t fi_off = fingerprint(fi_config);
  std::vector<std::uint64_t> fi_prints = {fi_off};
  for (const auto mode :
       {harden::HardenMode::kDwc, harden::HardenMode::kTmr,
        harden::HardenMode::kCfcss, harden::HardenMode::kTmrCfcss}) {
    fi_config.rig.harden = mode;
    fi_prints.push_back(fingerprint(fi_config));
  }
  std::sort(fi_prints.begin(), fi_prints.end());
  EXPECT_EQ(std::unique(fi_prints.begin(), fi_prints.end()), fi_prints.end());

  beam::BeamConfig beam_config;
  beam_config.harden = harden::HardenMode::kOff;
  const std::uint64_t beam_off = fingerprint(beam_config);
  beam_config.harden = harden::HardenMode::kTmrCfcss;
  EXPECT_NE(fingerprint(beam_config), beam_off);
}

TEST(Fingerprint, StableForEqualConfigs) {
  fi::CampaignConfig a;
  fi::CampaignConfig b;
  EXPECT_EQ(fingerprint(a), fingerprint(b));
}

TEST(ResultCache, DisabledCacheNoOps) {
  const ResultCache cache("");
  EXPECT_FALSE(cache.enabled());
  cache.store("key", "value");
  EXPECT_FALSE(cache.load("key").has_value());
}

TEST(ResultCache, StoreAndLoadRoundTrip) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / "sefi-cache-test").string();
  std::filesystem::remove_all(dir);
  const ResultCache cache(dir);
  EXPECT_TRUE(cache.enabled());
  EXPECT_FALSE(cache.load("missing").has_value());
  cache.store("some-key", "payload\nlines\n");
  const auto loaded = cache.load("some-key");
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(*loaded, "payload\nlines\n");
  std::filesystem::remove_all(dir);
}

TEST(ResultCache, KeysEncodeKindWorkloadAndFingerprint) {
  const std::string key = ResultCache::make_key("fi", 0xabcd, "CRC32");
  EXPECT_NE(key.find("fi"), std::string::npos);
  EXPECT_NE(key.find("CRC32"), std::string::npos);
  EXPECT_NE(key.find("abcd"), std::string::npos);
  EXPECT_NE(key, ResultCache::make_key("beam", 0xabcd, "CRC32"));
}

TEST(Fingerprint, IgnoresFastpathKnob) {
  // SEFI_FASTPATH selects an executor fast path that is bit-identical by
  // contract, so it must not enter the campaign fingerprint: results
  // cached under one tier stay valid (and are found) under any other.
  fi::CampaignConfig fi_config;
  beam::BeamConfig beam_config;
  std::uint64_t fi_off = 0, beam_off = 0;
  {
    sefi::testing::ScopedFastpath off("off");
    fi_off = fingerprint(fi_config);
    beam_off = fingerprint(beam_config);
  }
  sefi::testing::ScopedFastpath fast("block");
  EXPECT_EQ(fingerprint(fi_config), fi_off);
  EXPECT_EQ(fingerprint(beam_config), beam_off);
}

TEST(Serialization, FiRejectsOutOfRangeComponentKind) {
  std::string text = serialize(sample_fi_result());
  const auto broken = [&text](const std::string& bogus) {
    std::string copy = text;
    const std::size_t pos = copy.find("component 0 ");
    EXPECT_NE(pos, std::string::npos);
    copy.replace(pos, std::string("component 0").size(), "component " + bogus);
    return copy;
  };
  ASSERT_TRUE(deserialize_fi(text).has_value());
  EXPECT_FALSE(deserialize_fi(broken("6")).has_value());
  EXPECT_FALSE(deserialize_fi(broken("99")).has_value());
  EXPECT_FALSE(deserialize_fi(broken("-1")).has_value());
}

TEST(ResultCache, MakeKeySanitizesWorkloadNames) {
  const std::string key =
      ResultCache::make_key("fi", 0x1, "../../etc/passwd");
  EXPECT_EQ(key.find('/'), std::string::npos);
  EXPECT_EQ(key.find('.'), std::string::npos);
  // Names that sanitize to the same text still get distinct keys (the
  // raw-name hash keeps them apart), so no filename collision is
  // possible.
  EXPECT_NE(ResultCache::make_key("fi", 0x1, "a/b"),
            ResultCache::make_key("fi", 0x1, "a_b"));
  const std::string long_a(300, 'x');
  const std::string long_b = long_a + "y";
  const std::string key_a = ResultCache::make_key("fi", 0x1, long_a);
  EXPECT_LT(key_a.size(), 120u);
  EXPECT_NE(key_a, ResultCache::make_key("fi", 0x1, long_b));
}

TEST_F(CacheDirTest, RoundTripIsBitIdenticalForFiAndBeam) {
  const std::string fi_payload = serialize(sample_fi_result());
  const std::string beam_payload = serialize(sample_beam_result());
  {
    const ResultCache writer(dir_);
    EXPECT_TRUE(writer.store("fi-key", fi_payload));
    EXPECT_TRUE(writer.store("beam-key", beam_payload));
  }
  const ResultCache reader(dir_);  // fresh instance: cold memo, disk path
  EXPECT_EQ(reader.load("fi-key"), fi_payload);
  EXPECT_EQ(reader.load("beam-key"), beam_payload);
}

TEST_F(CacheDirTest, TornWriteNeverYieldsASuccessfulDeserialize) {
  const ResultCache writer(dir_);
  const std::string key = "fi-torn";
  writer.store_fi(key, sample_fi_result());
  const std::string stored_path = writer.entry_path(key);
  const std::string sealed = read_raw(stored_path);
  ASSERT_GT(sealed.size(), 0u);
  for (std::size_t len = 0; len < sealed.size(); ++len) {
    write_raw(stored_path, sealed.substr(0, len));
    const ResultCache reader(dir_);
    EXPECT_EQ(reader.load_fi(key), nullptr)
        << "entry truncated to " << len << " bytes deserialized";
    EXPECT_FALSE(fs::exists(stored_path))
        << "torn entry not quarantined at " << len << " bytes";
  }
}

TEST_F(CacheDirTest, BitFlippedEntryLoadsAsMiss) {
  const ResultCache writer(dir_);
  const std::string key = "beam-flip";
  writer.store(key, serialize(sample_beam_result()));
  const std::string stored_path = writer.entry_path(key);
  const std::string sealed = read_raw(stored_path);
  for (std::size_t i = 0; i < sealed.size(); ++i) {
    std::string tampered = sealed;
    tampered[i] = static_cast<char>(tampered[i] ^ 0x08);
    write_raw(stored_path, tampered);
    const ResultCache reader(dir_);
    EXPECT_FALSE(reader.load(key).has_value())
        << "flip at byte " << i << " went undetected";
  }
}

TEST_F(CacheDirTest, EmptyEntryIsAQuarantinedMiss) {
  write_raw(entry_path("empty"), "");
  const ResultCache cache(dir_);
  EXPECT_FALSE(cache.load("empty").has_value());
  EXPECT_FALSE(fs::exists(entry_path("empty")));
  EXPECT_TRUE(fs::exists(entry_path("empty") + ".quarantined"));
  EXPECT_EQ(cache.telemetry().corrupt_quarantined, 1u);
  EXPECT_EQ(cache.telemetry().misses, 1u);
}

TEST_F(CacheDirTest, VersionSkewIsIgnoredNotQuarantined) {
  // A pre-v5 entry: no checksum footer at all.
  write_raw(entry_path("old"),
            "fi v4\nworkload CRC32\ncomponent 0 bits 10 masked 1 sdc 0 "
            "app 0 sys 0 margin 0.1\n");
  const ResultCache cache(dir_);
  EXPECT_EQ(cache.load_fi("old"), nullptr);
  EXPECT_TRUE(fs::exists(entry_path("old")));  // left for gc, not renamed
  EXPECT_EQ(cache.telemetry().version_skew, 1u);
  EXPECT_EQ(cache.telemetry().corrupt_quarantined, 0u);

  // A sealed entry from a hypothetical other version: checksum passes,
  // the version tag says "not ours" — also an ignored miss.
  write_raw(entry_path("future"), support::seal("beam v9\nworkload FFT\n"));
  EXPECT_EQ(cache.load_beam("future"), nullptr);
  EXPECT_TRUE(fs::exists(entry_path("future")));
  EXPECT_EQ(cache.telemetry().version_skew, 2u);
  EXPECT_EQ(cache.telemetry().corrupt_quarantined, 0u);
}

TEST_F(CacheDirTest, ConcurrentWritersOnOneKeyLeaveOneValidEntry) {
  constexpr int kThreads = 8;
  constexpr int kRounds = 40;
  const std::string key = "beam-hammer";
  std::vector<std::string> payloads;
  for (int t = 0; t < kThreads; ++t) {
    beam::BeamResult result = sample_beam_result();
    result.runs = 1000 + static_cast<std::uint64_t>(t);
    payloads.push_back(serialize(result));
  }
  // One ResultCache instance per thread on the same directory — the
  // cross-process topology the bench suite creates.
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([this, &payloads, &key, t] {
      const ResultCache cache(dir_);
      for (int round = 0; round < kRounds; ++round) {
        ASSERT_TRUE(cache.store(key, payloads[t]));
        const auto seen = cache.load(key);
        ASSERT_TRUE(seen.has_value());
        // Whatever we read must be some writer's complete payload.
        EXPECT_NE(std::find(payloads.begin(), payloads.end(), *seen),
                  payloads.end());
        ASSERT_TRUE(deserialize_beam(*seen).has_value());
      }
    });
  }
  for (auto& thread : threads) thread.join();

  std::size_t files = 0;
  for ([[maybe_unused]] const auto& entry : fs::directory_iterator(dir_)) {
    ++files;
  }
  EXPECT_EQ(files, 1u);  // exactly one entry, no temp litter
  const ResultCache reader(dir_);
  const auto final_payload = reader.load(key);
  ASSERT_TRUE(final_payload.has_value());
  EXPECT_NE(std::find(payloads.begin(), payloads.end(), *final_payload),
            payloads.end());
  EXPECT_EQ(reader.telemetry().corrupt_quarantined, 0u);
}

TEST_F(CacheDirTest, TelemetryCountsEveryTier) {
  const ResultCache cache(dir_);
  EXPECT_EQ(cache.load_fi("k"), nullptr);
  EXPECT_EQ(cache.telemetry().misses, 1u);

  cache.store_fi("k", sample_fi_result());
  EXPECT_EQ(cache.telemetry().stores, 1u);
  EXPECT_GT(cache.telemetry().bytes_written, 0u);

  ASSERT_NE(cache.load_fi("k"), nullptr);  // memo tier
  EXPECT_EQ(cache.telemetry().memo_hits, 1u);
  EXPECT_EQ(cache.telemetry().disk_hits, 0u);

  const ResultCache fresh(dir_);  // disk tier
  ASSERT_NE(fresh.load_fi("k"), nullptr);
  EXPECT_EQ(fresh.telemetry().disk_hits, 1u);
  EXPECT_GT(fresh.telemetry().bytes_read, 0u);
  ASSERT_NE(fresh.load_fi("k"), nullptr);  // now memoized there too
  EXPECT_EQ(fresh.telemetry().memo_hits, 1u);
}

TEST_F(CacheDirTest, FailedStoreIsCountedAndPublishesNothing) {
  // A cache directory nested under a regular file can never be created:
  // every store must fail cleanly.
  write_raw(dir_ + "/blocker", "i am a file");
  const ResultCache cache(dir_ + "/blocker/cache");
  EXPECT_FALSE(cache.store("k", "payload"));
  EXPECT_EQ(cache.telemetry().store_failures, 1u);
  EXPECT_EQ(cache.telemetry().stores, 0u);
  // The typed tier still memoizes the result so this process keeps
  // working; only the disk publish failed.
  const fi::WorkloadFiResult& memoized =
      cache.store_fi("k2", sample_fi_result());
  EXPECT_EQ(memoized.workload, "CRC32");
  EXPECT_EQ(cache.telemetry().store_failures, 2u);
  EXPECT_EQ(cache.load_fi("k2"), &memoized);
}

TEST(ResultCache, MemoServesResultsWhenDiskDisabled) {
  const ResultCache cache("");
  EXPECT_EQ(cache.load_beam("k"), nullptr);
  const beam::BeamResult& stored = cache.store_beam("k", sample_beam_result());
  EXPECT_EQ(cache.load_beam("k"), &stored);
  EXPECT_EQ(cache.telemetry().memo_hits, 1u);
  EXPECT_EQ(cache.telemetry().stores, 0u);
  EXPECT_EQ(cache.telemetry().store_failures, 0u);
}

TEST_F(CacheDirTest, VerifyAndGcPartitionTheDirectory) {
  const ResultCache cache(dir_);
  cache.store("good", serialize(sample_beam_result()));
  write_raw(entry_path("corrupt"), "garbage that is not sealed");
  write_raw(entry_path("old"), "fi v4\nworkload X\n");
  write_raw(dir_ + "/stale.txt.tmp-999-0", "half a wri");
  write_raw(dir_ + "/dead.txt.quarantined", "previously quarantined");

  const auto report = cache.verify(false);
  EXPECT_EQ(report.entries, 3u);
  EXPECT_EQ(report.valid, 1u);
  EXPECT_EQ(report.corrupt, 1u);
  EXPECT_EQ(report.version_skew, 1u);
  EXPECT_EQ(report.temp_files, 1u);
  EXPECT_EQ(report.quarantined, 1u);
  EXPECT_GT(report.bytes, 0u);

  // verify(quarantine_bad) renames the corrupt entry out of the way.
  const auto after = cache.verify(true);
  EXPECT_EQ(after.corrupt, 1u);
  EXPECT_FALSE(fs::exists(entry_path("corrupt")));
  EXPECT_TRUE(fs::exists(entry_path("corrupt") + ".quarantined"));

  // gc drops quarantined + stale temps + old-format; the valid entry
  // stays. Grace period 0 so the just-written temp already counts as a
  // crashed writer's orphan.
  ::setenv("SEFI_TEMP_GRACE_MS", "0", 1);
  support::env::refresh();
  const auto gc = cache.gc();
  ::unsetenv("SEFI_TEMP_GRACE_MS");
  support::env::refresh();
  EXPECT_EQ(gc.removed_files, 4u);  // corrupt.q, dead.q, temp, old
  EXPECT_EQ(gc.temps_swept, 1u);
  EXPECT_GT(gc.bytes_reclaimed, 0u);
  EXPECT_TRUE(fs::exists(cache.entry_path("good")));
  const ResultCache reader(dir_);
  EXPECT_TRUE(reader.load("good").has_value());
  // Only the valid entry's shard subdirectory remains at the top level.
  std::size_t files = 0;
  for ([[maybe_unused]] const auto& entry : fs::directory_iterator(dir_)) {
    ++files;
  }
  EXPECT_EQ(files, 1u);
}

TEST_F(CacheDirTest, EntriesLandInTwoHexShardSubdirectories) {
  const ResultCache cache(dir_);
  ASSERT_TRUE(cache.store("some-key", serialize(sample_beam_result())));
  const std::string stored_path = cache.entry_path("some-key");
  EXPECT_TRUE(fs::exists(stored_path));
  EXPECT_FALSE(fs::exists(entry_path("some-key")));  // not flat
  // Path shape: <dir>/<ab>/<key>.txt with ab two lowercase hex digits.
  const std::string shard =
      fs::path(stored_path).parent_path().filename().string();
  ASSERT_EQ(shard.size(), 2u);
  for (const char c : shard) {
    EXPECT_TRUE((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f')) << shard;
  }
  EXPECT_EQ(fs::path(stored_path).parent_path().parent_path().string(), dir_);
  EXPECT_TRUE(cache.has_entry("some-key"));
  EXPECT_FALSE(cache.has_entry("other-key"));
}

TEST_F(CacheDirTest, FlatLayoutEntriesLoadTransparently) {
  // Fabricate a pre-shard cache: a valid sealed entry at the flat path.
  {
    const ResultCache writer(dir_);
    ASSERT_TRUE(writer.store("legacy", serialize(sample_beam_result())));
    fs::rename(writer.entry_path("legacy"), entry_path("legacy"));
  }
  const ResultCache reader(dir_);
  EXPECT_TRUE(reader.has_entry("legacy"));
  EXPECT_NE(reader.load_beam("legacy"), nullptr);
  EXPECT_EQ(reader.telemetry().disk_hits, 1u);
}

TEST_F(CacheDirTest, GcMigratesFlatEntriesIntoShards) {
  const ResultCache cache(dir_);
  ASSERT_TRUE(cache.store("migrate-me", serialize(sample_beam_result())));
  fs::rename(cache.entry_path("migrate-me"), entry_path("migrate-me"));

  const auto report = cache.gc();
  EXPECT_EQ(report.migrated, 1u);
  EXPECT_EQ(report.removed_files, 0u);  // migration moves, never deletes
  EXPECT_FALSE(fs::exists(entry_path("migrate-me")));
  EXPECT_TRUE(fs::exists(cache.entry_path("migrate-me")));
  EXPECT_EQ(cache.telemetry().flat_migrated, 1u);

  const ResultCache reader(dir_);
  EXPECT_NE(reader.load_beam("migrate-me"), nullptr);
}

TEST_F(CacheDirTest, OrphanedTempsSurviveTheGracePeriodThenSweep) {
  const ResultCache cache(dir_);
  ASSERT_TRUE(cache.store("live", serialize(sample_beam_result())));
  write_raw(dir_ + "/crashed.txt.tmp-424242-7", "partial pub");

  // Young temp + default 15-min grace: a live writer could own it.
  const auto young = cache.gc();
  EXPECT_EQ(young.temps_swept, 0u);
  EXPECT_TRUE(fs::exists(dir_ + "/crashed.txt.tmp-424242-7"));

  // Grace 0: the same temp is now a crashed writer's orphan.
  ::setenv("SEFI_TEMP_GRACE_MS", "0", 1);
  support::env::refresh();
  const auto swept = cache.gc();
  ::unsetenv("SEFI_TEMP_GRACE_MS");
  support::env::refresh();
  EXPECT_EQ(swept.temps_swept, 1u);
  EXPECT_FALSE(fs::exists(dir_ + "/crashed.txt.tmp-424242-7"));
  EXPECT_EQ(cache.telemetry().stale_temps_swept, 1u);
  // The published entry is untouched throughout.
  EXPECT_NE(cache.load_beam("live"), nullptr);
}

}  // namespace
}  // namespace sefi::core
