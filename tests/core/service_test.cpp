#include "sefi/core/service.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>

#include "sefi/obs/metrics.hpp"
#include "sefi/obs/snapshot.hpp"
#include "sefi/support/error.hpp"
#include "sefi/support/fsio.hpp"

namespace sefi::core {
namespace {

namespace fs = std::filesystem;

/// Small enough to fork freely, big enough that every worker count gets
/// multiple shards with several indices each.
LabConfig tiny_config() {
  LabConfig config = LabConfig::from_env(8, 50);
  config.fi.faults_per_component = 8;
  config.fi.threads = 2;
  config.beam.runs = 50;
  return config;
}

class ServiceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    root_ = (fs::temp_directory_path() /
             (std::string("sefi-serve-") + info->name())).string();
    fs::remove_all(root_);
    fs::create_directories(root_);
  }
  void TearDown() override {
    ::unsetenv("SEFI_CACHE_DIR");
    fs::remove_all(root_);
  }

  /// Points SEFI_CACHE_DIR (deliberately uncached, see support/env.hpp)
  /// at a fresh per-purpose directory for the next lab construction.
  std::string use_cache(const std::string& name) {
    const std::string dir = root_ + "/" + name;
    ::setenv("SEFI_CACHE_DIR", dir.c_str(), 1);
    return dir;
  }

  std::string root_;
};

// The tentpole contract: serve's merged ClassCounts are bit-identical
// to a single-process lab.run_fi at ANY worker count. Byte-equality of
// the canonical serialized form is the strongest version of that.
TEST_F(ServiceTest, MergedResultIsBitIdenticalForAnyWorkerCount) {
  const auto& w = workloads::workload_by_name("CRC32");
  use_cache("single");
  AssessmentLab single(tiny_config());
  const std::string reference = serialize(single.run_fi(w));

  for (const std::size_t workers : {1u, 4u}) {
    use_cache("served-" + std::to_string(workers));
    AssessmentLab lab(tiny_config());
    ServeConfig config;
    config.workers = workers;
    config.shards_per_worker = 2;
    config.lease_ms = 0;  // no expiry races in tests
    ServeStats stats;
    const fi::WorkloadFiResult& result =
        serve_fi_campaign(lab, w, config, &stats);
    EXPECT_EQ(serialize(result), reference) << workers << " workers";
    EXPECT_EQ(stats.shards_done, stats.shards);
    EXPECT_GT(stats.merged_records, 0u);
    EXPECT_EQ(stats.worker_deaths, 0u);
  }
}

// SIGKILL one worker mid-campaign: its lease is reclaimed, the shard is
// re-run elsewhere, and the merged bytes still match single-process.
TEST_F(ServiceTest, KilledWorkerLeaseIsReclaimedAndResultUnchanged) {
  const auto& w = workloads::workload_by_name("CRC32");
  use_cache("single");
  AssessmentLab single(tiny_config());
  const std::string reference = serialize(single.run_fi(w));

  use_cache("killed");
  AssessmentLab lab(tiny_config());
  ServeConfig config;
  config.workers = 3;
  config.lease_ms = 0;
  config.self_kill_marker = root_ + "/kill-marker";
  ServeStats stats;
  const fi::WorkloadFiResult& result =
      serve_fi_campaign(lab, w, config, &stats);
  EXPECT_EQ(serialize(result), reference);
  EXPECT_GE(stats.worker_deaths, 1u);
  EXPECT_GE(stats.leases_reclaimed, 1u);
  EXPECT_EQ(stats.shards_done, stats.shards);
}

TEST_F(ServiceTest, SecondServeIsServedFromTheCache) {
  const auto& w = workloads::workload_by_name("CRC32");
  use_cache("cache");
  AssessmentLab lab(tiny_config());
  ServeConfig config;
  config.workers = 2;
  config.lease_ms = 0;
  ServeStats first_stats;
  ServeStats second_stats;
  const fi::WorkloadFiResult& first =
      serve_fi_campaign(lab, w, config, &first_stats);
  const fi::WorkloadFiResult& second =
      serve_fi_campaign(lab, w, config, &second_stats);
  EXPECT_EQ(&first, &second);  // the lab's memo tier, no re-run
  EXPECT_GT(first_stats.shards_done, 0u);
  EXPECT_EQ(second_stats.shards, 0u);
  EXPECT_EQ(second_stats.merged_records, 0u);
}

TEST_F(ServiceTest, ShardTransportFilesAreCleanedUpAfterMerge) {
  const auto& w = workloads::workload_by_name("CRC32");
  const std::string dir = use_cache("cleanup");
  AssessmentLab lab(tiny_config());
  ServeConfig config;
  config.workers = 2;
  config.lease_ms = 0;
  (void)serve_fi_campaign(lab, w, config, nullptr);
  for (const auto& entry : fs::recursive_directory_iterator(dir)) {
    const std::string name = entry.path().filename().string();
    EXPECT_EQ(name.find(".shard"), std::string::npos) << name;
    EXPECT_EQ(name.find(".leases."), std::string::npos) << name;
  }
}

// The observability tentpole, end to end in-process: workers drop
// decodable `<pid>.metrics` fallback files, the merged fleet view's
// worker-done counter equals the coordinator's shard count, and /status
// lands on the final estimator's per-component AVF.
TEST_F(ServiceTest, FleetViewMergesWorkerSnapshotsAndConverges) {
  const bool was_enabled = obs::metrics_enabled();
  obs::Registry::instance().set_enabled(true);
  obs::Registry::instance().reset();

  const auto& w = workloads::workload_by_name("CRC32");
  const std::string dir = use_cache("fleet");
  AssessmentLab lab(tiny_config());
  ServeMonitor monitor(dir + "/serve/workers");
  monitor.set_pool_info(3, 0, 16);
  ServeConfig config;
  config.workers = 3;
  config.shards_per_worker = 2;
  config.lease_ms = 0;
  config.monitor = &monitor;
  config.monitor_refresh_ms = 50;
  std::uint64_t ticks = 0;
  config.on_tick = [&] { ++ticks; };
  ServeStats stats;
  const fi::WorkloadFiResult& result =
      serve_fi_campaign(lab, w, config, &stats);
  EXPECT_EQ(stats.shards_done, stats.shards);
  EXPECT_GT(ticks, 0u);

  // Every worker left a SIGKILL-surviving fallback file, and each one
  // decodes (atomic publish: a scrape never sees a torn file).
  std::size_t metrics_files = 0;
  for (const auto& entry : fs::directory_iterator(monitor.workers_dir())) {
    if (entry.path().extension() != ".metrics") continue;
    ++metrics_files;
    const auto content = support::read_file(entry.path().string());
    ASSERT_TRUE(content.has_value());
    obs::MetricsSnapshot snap;
    EXPECT_TRUE(obs::decode_snapshot(*content, snap)) << entry.path();
  }
  EXPECT_GT(metrics_files, 0u);

  // Fleet counter equality: the workers' own shards-done counter,
  // summed across the merged view, equals the coordinator's count.
  const obs::MetricsSnapshot merged = monitor.merged_snapshot();
  std::uint64_t worker_done = 0;
  for (const auto& family : merged.families) {
    if (family.name != "sefi_serve_worker_shards_done_total") continue;
    for (const auto& series : family.series) worker_done += series.counter;
  }
  EXPECT_EQ(worker_done, stats.shards_done);

  // /metrics is the Prometheus exposition of that merged view, and the
  // convergence gauges are in it.
  const std::string text = monitor.metrics_text();
  EXPECT_NE(text.find("sefi_serve_worker_shards_done_total"),
            std::string::npos);
  EXPECT_NE(text.find("sefi_campaign_avf_estimate{component=\"L1D\"}"),
            std::string::npos);

  // /status: shard dispositions all done, and the per-component AVF has
  // been pinned to the final campaign estimator.
  const std::string status = monitor.status_json();
  EXPECT_NE(status.find("\"healthy\":true"), std::string::npos);
  EXPECT_NE(status.find("\"state\":\"done\""), std::string::npos);
  EXPECT_NE(status.find("\"workload\":\"CRC32\""), std::string::npos);
  EXPECT_NE(status.find("\"shards\":{\"total\":" +
                        std::to_string(stats.shards)),
            std::string::npos);
  char avf[64];
  std::snprintf(avf, sizeof(avf), "\"avf\":%.12g",
                result.components[0].avf());
  EXPECT_NE(status.find(avf), std::string::npos);

  obs::Registry::instance().reset();
  obs::Registry::instance().set_enabled(was_enabled);
}

// Corrupt fallback files are quarantined, never merged: a torn
// `<pid>.metrics` must not poison the fleet view.
TEST_F(ServiceTest, TornWorkerMetricsFileIsSkippedNotMerged) {
  const std::string dir = use_cache("torn");
  ServeMonitor monitor(dir + "/serve/workers");
  ASSERT_TRUE(support::write_file_atomic(
      monitor.workers_dir() + "/12345.metrics", "sefi-metrics 1\ntruncated"));
  const obs::MetricsSnapshot merged = monitor.merged_snapshot();
  for (const auto& family : merged.families) {
    for (const auto& series : family.series) {
      EXPECT_EQ(series.labels.find("src=\"12345\""), std::string::npos)
          << family.name;
    }
  }
  const std::string status = monitor.status_json();
  EXPECT_NE(status.find("\"snapshots_skipped\":1"), std::string::npos);
}

TEST_F(ServiceTest, ThrowsWithoutAJournalingCache) {
  const auto& w = workloads::workload_by_name("CRC32");
  ::unsetenv("SEFI_CACHE_DIR");  // disabled disk tier -> no journals
  AssessmentLab lab(tiny_config());
  EXPECT_THROW(serve_fi_campaign(lab, w, ServeConfig{}, nullptr),
               support::SefiError);
}

}  // namespace
}  // namespace sefi::core
