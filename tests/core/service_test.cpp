#include "sefi/core/service.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <string>

#include "sefi/support/error.hpp"

namespace sefi::core {
namespace {

namespace fs = std::filesystem;

/// Small enough to fork freely, big enough that every worker count gets
/// multiple shards with several indices each.
LabConfig tiny_config() {
  LabConfig config = LabConfig::from_env(8, 50);
  config.fi.faults_per_component = 8;
  config.fi.threads = 2;
  config.beam.runs = 50;
  return config;
}

class ServiceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    root_ = (fs::temp_directory_path() /
             (std::string("sefi-serve-") + info->name())).string();
    fs::remove_all(root_);
    fs::create_directories(root_);
  }
  void TearDown() override {
    ::unsetenv("SEFI_CACHE_DIR");
    fs::remove_all(root_);
  }

  /// Points SEFI_CACHE_DIR (deliberately uncached, see support/env.hpp)
  /// at a fresh per-purpose directory for the next lab construction.
  std::string use_cache(const std::string& name) {
    const std::string dir = root_ + "/" + name;
    ::setenv("SEFI_CACHE_DIR", dir.c_str(), 1);
    return dir;
  }

  std::string root_;
};

// The tentpole contract: serve's merged ClassCounts are bit-identical
// to a single-process lab.run_fi at ANY worker count. Byte-equality of
// the canonical serialized form is the strongest version of that.
TEST_F(ServiceTest, MergedResultIsBitIdenticalForAnyWorkerCount) {
  const auto& w = workloads::workload_by_name("CRC32");
  use_cache("single");
  AssessmentLab single(tiny_config());
  const std::string reference = serialize(single.run_fi(w));

  for (const std::size_t workers : {1u, 4u}) {
    use_cache("served-" + std::to_string(workers));
    AssessmentLab lab(tiny_config());
    ServeConfig config;
    config.workers = workers;
    config.shards_per_worker = 2;
    config.lease_ms = 0;  // no expiry races in tests
    ServeStats stats;
    const fi::WorkloadFiResult& result =
        serve_fi_campaign(lab, w, config, &stats);
    EXPECT_EQ(serialize(result), reference) << workers << " workers";
    EXPECT_EQ(stats.shards_done, stats.shards);
    EXPECT_GT(stats.merged_records, 0u);
    EXPECT_EQ(stats.worker_deaths, 0u);
  }
}

// SIGKILL one worker mid-campaign: its lease is reclaimed, the shard is
// re-run elsewhere, and the merged bytes still match single-process.
TEST_F(ServiceTest, KilledWorkerLeaseIsReclaimedAndResultUnchanged) {
  const auto& w = workloads::workload_by_name("CRC32");
  use_cache("single");
  AssessmentLab single(tiny_config());
  const std::string reference = serialize(single.run_fi(w));

  use_cache("killed");
  AssessmentLab lab(tiny_config());
  ServeConfig config;
  config.workers = 3;
  config.lease_ms = 0;
  config.self_kill_marker = root_ + "/kill-marker";
  ServeStats stats;
  const fi::WorkloadFiResult& result =
      serve_fi_campaign(lab, w, config, &stats);
  EXPECT_EQ(serialize(result), reference);
  EXPECT_GE(stats.worker_deaths, 1u);
  EXPECT_GE(stats.leases_reclaimed, 1u);
  EXPECT_EQ(stats.shards_done, stats.shards);
}

TEST_F(ServiceTest, SecondServeIsServedFromTheCache) {
  const auto& w = workloads::workload_by_name("CRC32");
  use_cache("cache");
  AssessmentLab lab(tiny_config());
  ServeConfig config;
  config.workers = 2;
  config.lease_ms = 0;
  ServeStats first_stats;
  ServeStats second_stats;
  const fi::WorkloadFiResult& first =
      serve_fi_campaign(lab, w, config, &first_stats);
  const fi::WorkloadFiResult& second =
      serve_fi_campaign(lab, w, config, &second_stats);
  EXPECT_EQ(&first, &second);  // the lab's memo tier, no re-run
  EXPECT_GT(first_stats.shards_done, 0u);
  EXPECT_EQ(second_stats.shards, 0u);
  EXPECT_EQ(second_stats.merged_records, 0u);
}

TEST_F(ServiceTest, ShardTransportFilesAreCleanedUpAfterMerge) {
  const auto& w = workloads::workload_by_name("CRC32");
  const std::string dir = use_cache("cleanup");
  AssessmentLab lab(tiny_config());
  ServeConfig config;
  config.workers = 2;
  config.lease_ms = 0;
  (void)serve_fi_campaign(lab, w, config, nullptr);
  for (const auto& entry : fs::recursive_directory_iterator(dir)) {
    const std::string name = entry.path().filename().string();
    EXPECT_EQ(name.find(".shard"), std::string::npos) << name;
    EXPECT_EQ(name.find(".leases."), std::string::npos) << name;
  }
}

TEST_F(ServiceTest, ThrowsWithoutAJournalingCache) {
  const auto& w = workloads::workload_by_name("CRC32");
  ::unsetenv("SEFI_CACHE_DIR");  // disabled disk tier -> no journals
  AssessmentLab lab(tiny_config());
  EXPECT_THROW(serve_fi_campaign(lab, w, ServeConfig{}, nullptr),
               support::SefiError);
}

}  // namespace
}  // namespace sefi::core
