#include "sefi/core/lab.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>

namespace sefi::core {
namespace {

LabConfig small_lab_config() {
  LabConfig config = LabConfig::from_env(20, 150);
  // Pin sizes regardless of environment so tests are stable.
  config.fi.faults_per_component = 20;
  config.beam.runs = 150;
  return config;
}

TEST(ScaledUarch, GeometryIsScaledDown) {
  const microarch::DetailedConfig scaled = scaled_uarch();
  const microarch::DetailedConfig paper;
  EXPECT_LT(scaled.l1d.size_bytes, paper.l1d.size_bytes);
  EXPECT_LT(scaled.l2.size_bytes, paper.l2.size_bytes);
  EXPECT_LT(scaled.dtlb_entries, paper.dtlb_entries);
  // Associativities and line size match the paper's Table II.
  EXPECT_EQ(scaled.l1d.ways, paper.l1d.ways);
  EXPECT_EQ(scaled.l2.ways, paper.l2.ways);
  EXPECT_EQ(scaled.l1d.line_bytes, paper.l1d.line_bytes);
}

TEST(LabConfigFromEnv, ReadsEnvironment) {
  ::setenv("SEFI_FAULTS", "77", 1);
  ::setenv("SEFI_BEAM_RUNS", "88", 1);
  ::setenv("SEFI_SEED", "99", 1);
  const LabConfig config = LabConfig::from_env();
  EXPECT_EQ(config.fi.faults_per_component, 77u);
  EXPECT_EQ(config.beam.runs, 88u);
  EXPECT_EQ(config.fi.seed, 99u);
  ::unsetenv("SEFI_FAULTS");
  ::unsetenv("SEFI_BEAM_RUNS");
  ::unsetenv("SEFI_SEED");
  const LabConfig defaults = LabConfig::from_env(150, 600);
  EXPECT_EQ(defaults.fi.faults_per_component, 150u);
  EXPECT_EQ(defaults.beam.runs, 600u);
}

TEST(ConvertToFit, SumsComponentContributions) {
  LabConfig config = small_lab_config();
  AssessmentLab lab(config);

  fi::WorkloadFiResult synthetic;
  synthetic.workload = "synthetic";
  for (std::size_t i = 0; i < synthetic.components.size(); ++i) {
    auto& comp = synthetic.components[i];
    comp.component = static_cast<microarch::ComponentKind>(i);
    comp.bits = 1000;
    comp.counts = {60, 20, 10, 10};  // AVFs: 20% / 10% / 10%
  }
  const double fit_raw = lab.fit_raw_per_bit();
  const FiFitRates rates = lab.convert_to_fit(synthetic);
  EXPECT_NEAR(rates.sdc, fit_raw * 1000 * 0.2 * 6, 1e-9);
  EXPECT_NEAR(rates.app_crash, fit_raw * 1000 * 0.1 * 6, 1e-9);
  EXPECT_NEAR(rates.sys_crash, fit_raw * 1000 * 0.1 * 6, 1e-9);
  EXPECT_NEAR(rates.total(), rates.sdc + rates.app_crash + rates.sys_crash,
              1e-12);
}

TEST(Lab, FitRawIsCachedAndPositive) {
  AssessmentLab lab(small_lab_config());
  const double first = lab.fit_raw_per_bit();
  EXPECT_GT(first, 0.0);
  EXPECT_DOUBLE_EQ(first, lab.fit_raw_per_bit());
}

TEST(Lab, CampaignResultsAreMemoized) {
  AssessmentLab lab(small_lab_config());
  const auto& workload = *workloads::all_workloads()[10];  // SusanC
  const fi::WorkloadFiResult& first = lab.run_fi(workload);
  const fi::WorkloadFiResult& second = lab.run_fi(workload);
  EXPECT_EQ(&first, &second);
  const beam::BeamResult& beam_first = lab.run_beam(workload);
  const beam::BeamResult& beam_second = lab.run_beam(workload);
  EXPECT_EQ(&beam_first, &beam_second);
}

TEST(Lab, CompareProducesConsistentComparison) {
  AssessmentLab lab(small_lab_config());
  const auto& workload = workloads::workload_by_name("SusanE");
  const WorkloadComparison comparison = lab.compare(workload);
  EXPECT_EQ(comparison.workload, "SusanE");
  EXPECT_EQ(comparison.beam.workload, "SusanE");
  EXPECT_EQ(comparison.fi.workload, "SusanE");
  EXPECT_GE(comparison.fi_fit.total(), 0.0);
  EXPECT_GE(comparison.sdc_fold().magnitude, 1.0);
  EXPECT_GE(comparison.app_crash_fold().magnitude, 1.0);
  EXPECT_GE(comparison.sys_crash_fold().magnitude, 1.0);
  EXPECT_GE(comparison.sdc_plus_app_fold().magnitude, 1.0);
}

TEST(Aggregate, AveragesAndGaps) {
  std::vector<WorkloadComparison> sweep(2);
  sweep[0].beam.sdc = 10;
  sweep[0].beam.app_crash = 10;
  sweep[0].beam.sys_crash = 20;
  sweep[0].beam.fluence_per_cm2 = 13.0 * 1e9;  // FIT == events
  sweep[0].fi_fit = {5, 1, 0.5};
  sweep[1].beam.sdc = 20;
  sweep[1].beam.app_crash = 20;
  sweep[1].beam.sys_crash = 40;
  sweep[1].beam.fluence_per_cm2 = 13.0 * 1e9;
  sweep[1].fi_fit = {15, 3, 1.5};

  const AggregateComparison agg = AssessmentLab::aggregate(sweep);
  EXPECT_NEAR(agg.beam_sdc, 15.0, 1e-9);
  EXPECT_NEAR(agg.beam_sdc_app, 30.0, 1e-9);
  EXPECT_NEAR(agg.beam_total, 60.0, 1e-9);
  EXPECT_NEAR(agg.fi_sdc, 10.0, 1e-9);
  EXPECT_NEAR(agg.fi_sdc_app, 12.0, 1e-9);
  EXPECT_NEAR(agg.fi_total, 13.0, 1e-9);
  EXPECT_NEAR(agg.sdc_gap(), 1.5, 1e-9);
  EXPECT_NEAR(agg.sdc_app_gap(), 2.5, 1e-9);
  EXPECT_NEAR(agg.total_gap(), 60.0 / 13.0, 1e-9);
}

TEST(Aggregate, EmptySweepIsZero) {
  const AggregateComparison agg = AssessmentLab::aggregate({});
  EXPECT_DOUBLE_EQ(agg.beam_total, 0.0);
  EXPECT_DOUBLE_EQ(agg.fi_total, 0.0);
}

}  // namespace
}  // namespace sefi::core
