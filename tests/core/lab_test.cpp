#include "sefi/core/lab.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <stdexcept>

#include "sefi/support/env.hpp"

namespace sefi::core {
namespace {

LabConfig small_lab_config() {
  LabConfig config = LabConfig::from_env(20, 150);
  // Pin sizes regardless of environment so tests are stable.
  config.fi.faults_per_component = 20;
  config.beam.runs = 150;
  return config;
}

TEST(ScaledUarch, GeometryIsScaledDown) {
  const microarch::DetailedConfig scaled = scaled_uarch();
  const microarch::DetailedConfig paper;
  EXPECT_LT(scaled.l1d.size_bytes, paper.l1d.size_bytes);
  EXPECT_LT(scaled.l2.size_bytes, paper.l2.size_bytes);
  EXPECT_LT(scaled.dtlb_entries, paper.dtlb_entries);
  // Associativities and line size match the paper's Table II.
  EXPECT_EQ(scaled.l1d.ways, paper.l1d.ways);
  EXPECT_EQ(scaled.l2.ways, paper.l2.ways);
  EXPECT_EQ(scaled.l1d.line_bytes, paper.l1d.line_bytes);
}

TEST(LabConfigFromEnv, ReadsEnvironment) {
  ::setenv("SEFI_FAULTS", "77", 1);
  ::setenv("SEFI_BEAM_RUNS", "88", 1);
  ::setenv("SEFI_SEED", "99", 1);
  support::env::refresh();  // drop the cached env snapshot
  const LabConfig config = LabConfig::from_env();
  EXPECT_EQ(config.fi.faults_per_component, 77u);
  EXPECT_EQ(config.beam.runs, 88u);
  EXPECT_EQ(config.fi.seed, 99u);
  ::unsetenv("SEFI_FAULTS");
  ::unsetenv("SEFI_BEAM_RUNS");
  ::unsetenv("SEFI_SEED");
  support::env::refresh();
  const LabConfig defaults = LabConfig::from_env(150, 600);
  EXPECT_EQ(defaults.fi.faults_per_component, 150u);
  EXPECT_EQ(defaults.beam.runs, 600u);
}

TEST(ConvertToFit, SumsComponentContributions) {
  LabConfig config = small_lab_config();
  AssessmentLab lab(config);

  fi::WorkloadFiResult synthetic;
  synthetic.workload = "synthetic";
  for (std::size_t i = 0; i < synthetic.components.size(); ++i) {
    auto& comp = synthetic.components[i];
    comp.component = static_cast<microarch::ComponentKind>(i);
    comp.bits = 1000;
    comp.counts = {60, 20, 10, 10};  // AVFs: 20% / 10% / 10%
  }
  const double fit_raw = lab.fit_raw_per_bit();
  const FiFitRates rates = lab.convert_to_fit(synthetic);
  EXPECT_NEAR(rates.sdc, fit_raw * 1000 * 0.2 * 6, 1e-9);
  EXPECT_NEAR(rates.app_crash, fit_raw * 1000 * 0.1 * 6, 1e-9);
  EXPECT_NEAR(rates.sys_crash, fit_raw * 1000 * 0.1 * 6, 1e-9);
  EXPECT_NEAR(rates.total(), rates.sdc + rates.app_crash + rates.sys_crash,
              1e-12);
}

TEST(Lab, FitRawIsCachedAndPositive) {
  AssessmentLab lab(small_lab_config());
  const double first = lab.fit_raw_per_bit();
  EXPECT_GT(first, 0.0);
  EXPECT_DOUBLE_EQ(first, lab.fit_raw_per_bit());
}

TEST(Lab, CampaignResultsAreMemoized) {
  AssessmentLab lab(small_lab_config());
  const auto& workload = *workloads::all_workloads()[10];  // SusanC
  const fi::WorkloadFiResult& first = lab.run_fi(workload);
  const fi::WorkloadFiResult& second = lab.run_fi(workload);
  EXPECT_EQ(&first, &second);
  const beam::BeamResult& beam_first = lab.run_beam(workload);
  const beam::BeamResult& beam_second = lab.run_beam(workload);
  EXPECT_EQ(&beam_first, &beam_second);
}

TEST(Lab, CompareProducesConsistentComparison) {
  AssessmentLab lab(small_lab_config());
  const auto& workload = workloads::workload_by_name("SusanE");
  const WorkloadComparison comparison = lab.compare(workload);
  EXPECT_EQ(comparison.workload, "SusanE");
  EXPECT_EQ(comparison.beam.workload, "SusanE");
  EXPECT_EQ(comparison.fi.workload, "SusanE");
  EXPECT_GE(comparison.fi_fit.total(), 0.0);
  EXPECT_GE(comparison.sdc_fold().magnitude, 1.0);
  EXPECT_GE(comparison.app_crash_fold().magnitude, 1.0);
  EXPECT_GE(comparison.sys_crash_fold().magnitude, 1.0);
  EXPECT_GE(comparison.sdc_plus_app_fold().magnitude, 1.0);
}

TEST(Aggregate, AveragesAndGaps) {
  std::vector<WorkloadComparison> sweep(2);
  sweep[0].beam.sdc = 10;
  sweep[0].beam.app_crash = 10;
  sweep[0].beam.sys_crash = 20;
  sweep[0].beam.fluence_per_cm2 = 13.0 * 1e9;  // FIT == events
  sweep[0].fi_fit = {5, 1, 0.5};
  sweep[1].beam.sdc = 20;
  sweep[1].beam.app_crash = 20;
  sweep[1].beam.sys_crash = 40;
  sweep[1].beam.fluence_per_cm2 = 13.0 * 1e9;
  sweep[1].fi_fit = {15, 3, 1.5};

  const AggregateComparison agg = AssessmentLab::aggregate(sweep);
  EXPECT_NEAR(agg.beam_sdc, 15.0, 1e-9);
  EXPECT_NEAR(agg.beam_sdc_app, 30.0, 1e-9);
  EXPECT_NEAR(agg.beam_total, 60.0, 1e-9);
  EXPECT_NEAR(agg.fi_sdc, 10.0, 1e-9);
  EXPECT_NEAR(agg.fi_sdc_app, 12.0, 1e-9);
  EXPECT_NEAR(agg.fi_total, 13.0, 1e-9);
  EXPECT_NEAR(agg.sdc_gap(), 1.5, 1e-9);
  EXPECT_NEAR(agg.sdc_app_gap(), 2.5, 1e-9);
  EXPECT_NEAR(agg.total_gap(), 60.0 / 13.0, 1e-9);
}

TEST(Aggregate, EmptySweepIsZero) {
  const AggregateComparison agg = AssessmentLab::aggregate({});
  EXPECT_DOUBLE_EQ(agg.beam_total, 0.0);
  EXPECT_DOUBLE_EQ(agg.fi_total, 0.0);
}

TEST(Lab, InterruptedCampaignResumesFromItsJournal) {
  namespace fs = std::filesystem;
  const std::string dir =
      (fs::temp_directory_path() / "sefi-lab-resume").string();
  fs::remove_all(dir);
  ::setenv("SEFI_CACHE_DIR", dir.c_str(), 1);

  LabConfig config = small_lab_config();
  config.fi.faults_per_component = 6;
  const auto& workload = workloads::workload_by_name("SusanC");

  // Interrupted run: the cancellation token trips mid-campaign, run_fi
  // throws, and the journal keeps every finished injection. A transient
  // fault earlier in the run seeds the journal's supervisor-telemetry
  // record so the status probe below has something to recover.
  exec::CancellationToken token;
  config.fi.cancel = &token;
  config.fi.task_fault_hook = [&token](std::size_t index,
                                       std::uint64_t attempt) {
    if (index == 5 && attempt == 0) {
      throw std::runtime_error("simulated transient fault");
    }
    if (index == 20) token.request_stop();
  };
  {
    AssessmentLab lab(config);
    ASSERT_TRUE(lab.journaling_enabled());
    try {
      lab.run_fi(workload);
      FAIL() << "interrupted campaign did not throw";
    } catch (const CampaignInterrupted& interrupted) {
      EXPECT_EQ(interrupted.total(), 36u);
      EXPECT_LT(interrupted.resolved(), interrupted.total());
    }
    const AssessmentLab::JournalStatus status =
        lab.fi_journal_status(workload);
    EXPECT_TRUE(status.enabled);
    EXPECT_TRUE(status.present);
    EXPECT_FALSE(status.cached);
    EXPECT_GT(status.records, 0u);
    EXPECT_LT(status.records, status.total);
    EXPECT_EQ(status.total, 36u);
    // The decoded per-verdict tallies cover every journaled record, and
    // the retry burned by the transient fault survives as recoverable
    // supervisor telemetry.
    EXPECT_EQ(status.resolved.attempted(), status.records);
    EXPECT_TRUE(status.has_telemetry);
    EXPECT_EQ(status.telemetry.retries, 1u);
    EXPECT_EQ(status.telemetry.harness_errors, 0u);
  }

  // Resume in a "new process": a fresh lab over the same cache dir picks
  // the journal up, finishes the rest, and publishes the same result an
  // uninterrupted campaign produces.
  config.fi.cancel = nullptr;
  config.fi.task_fault_hook = nullptr;
  AssessmentLab lab(config);
  const fi::WorkloadFiResult& resumed = lab.run_fi(workload);
  EXPECT_GT(resumed.stats.journal_replayed, 0u);
  EXPECT_FALSE(resumed.stats.cancelled);

  const fi::WorkloadFiResult clean = fi::run_fi_campaign(workload, config.fi);
  for (const auto kind : microarch::kAllComponents) {
    const fi::ClassCounts& a = clean.component(kind).counts;
    const fi::ClassCounts& b = resumed.component(kind).counts;
    EXPECT_EQ(a.masked, b.masked) << microarch::component_name(kind);
    EXPECT_EQ(a.sdc, b.sdc) << microarch::component_name(kind);
    EXPECT_EQ(a.app_crash, b.app_crash) << microarch::component_name(kind);
    EXPECT_EQ(a.sys_crash, b.sys_crash) << microarch::component_name(kind);
  }

  // The finished campaign retired its journal and cached its result.
  const AssessmentLab::JournalStatus done = lab.fi_journal_status(workload);
  EXPECT_FALSE(done.present);
  EXPECT_TRUE(done.cached);
  const AssessmentLab::SupervisorTelemetry telemetry =
      lab.supervisor_telemetry();
  EXPECT_GT(telemetry.journal_replayed, 0u);
  EXPECT_EQ(telemetry.journal_replayed + telemetry.tasks_run, 36u);
  ::unsetenv("SEFI_CACHE_DIR");
  fs::remove_all(dir);
}

TEST(Lab, DiscardedJournalRestartsTheCampaignFromScratch) {
  namespace fs = std::filesystem;
  const std::string dir =
      (fs::temp_directory_path() / "sefi-lab-discard").string();
  fs::remove_all(dir);
  ::setenv("SEFI_CACHE_DIR", dir.c_str(), 1);

  LabConfig config = small_lab_config();
  config.fi.faults_per_component = 6;
  const auto& workload = workloads::workload_by_name("SusanC");
  exec::CancellationToken token;
  config.fi.cancel = &token;
  config.fi.task_fault_hook = [&token](std::size_t index, std::uint64_t) {
    if (index == 12) token.request_stop();
  };
  {
    AssessmentLab lab(config);
    EXPECT_THROW(lab.run_fi(workload), CampaignInterrupted);
    EXPECT_TRUE(lab.fi_journal_status(workload).present);
    EXPECT_TRUE(lab.discard_fi_journal(workload));
    EXPECT_FALSE(lab.fi_journal_status(workload).present);
    EXPECT_FALSE(lab.discard_fi_journal(workload));  // already gone
  }

  config.fi.cancel = nullptr;
  config.fi.task_fault_hook = nullptr;
  AssessmentLab lab(config);
  const fi::WorkloadFiResult& result = lab.run_fi(workload);
  EXPECT_EQ(result.stats.journal_replayed, 0u);  // nothing to resume from
  EXPECT_EQ(result.stats.tasks_run, result.stats.injections);
  ::unsetenv("SEFI_CACHE_DIR");
  fs::remove_all(dir);
}

TEST(LabConfigFromEnv, ReadsSupervisorKnobs) {
  ::setenv("SEFI_MAX_TASK_RETRIES", "5", 1);
  ::setenv("SEFI_TASK_DEADLINE_MS", "1234", 1);
  ::setenv("SEFI_JOURNAL", "0", 1);
  support::env::refresh();
  const LabConfig config = LabConfig::from_env();
  EXPECT_EQ(config.fi.max_task_retries, 5u);
  EXPECT_EQ(config.fi.task_deadline_ms, 1234u);
  EXPECT_EQ(config.beam.max_task_retries, 5u);
  EXPECT_EQ(config.beam.task_deadline_ms, 1234u);
  EXPECT_FALSE(config.journal_enabled);
  ::unsetenv("SEFI_MAX_TASK_RETRIES");
  ::unsetenv("SEFI_TASK_DEADLINE_MS");
  ::unsetenv("SEFI_JOURNAL");
  support::env::refresh();
  const LabConfig defaults = LabConfig::from_env();
  EXPECT_EQ(defaults.fi.max_task_retries, 2u);
  EXPECT_EQ(defaults.fi.task_deadline_ms, 0u);
  EXPECT_TRUE(defaults.journal_enabled);
}

}  // namespace
}  // namespace sefi::core
