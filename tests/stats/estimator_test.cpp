#include "sefi/stats/estimator.hpp"

#include <gtest/gtest.h>

#include "sefi/support/error.hpp"

namespace sefi::stats {
namespace {

TEST(PrunedEstimate, NothingClassifiedIsAllZeros) {
  const PrunedEstimate est = pruned_estimate(0, 0, 0, 0, 0.99);
  EXPECT_DOUBLE_EQ(est.rate, 0.0);
  EXPECT_DOUBLE_EQ(est.variance, 0.0);
  EXPECT_DOUBLE_EQ(est.ci_half_width, 0.0);
}

TEST(PrunedEstimate, AllDeadIsExactZero) {
  // Every site proven Masked: the rate is 0 with certainty.
  const PrunedEstimate est = pruned_estimate(50, 0, 0, 0, 0.99);
  EXPECT_DOUBLE_EQ(est.rate, 0.0);
  EXPECT_DOUBLE_EQ(est.variance, 0.0);
}

TEST(PrunedEstimate, ExhaustiveLiveStratumDegeneratesToNaiveFraction) {
  // m == live: no subsampling happened, so the estimate must equal the
  // plain faulty / n fraction with zero sampling variance.
  const PrunedEstimate est = pruned_estimate(10, 10, 10, 5, 0.99);
  EXPECT_DOUBLE_EQ(est.rate, 5.0 / 20.0);
  EXPECT_DOUBLE_EQ(est.variance, 0.0);
  EXPECT_DOUBLE_EQ(est.ci_half_width, 0.0);
}

TEST(PrunedEstimate, ReweightsByLivePrevalence) {
  // 50 dead + 50 live, 25 executed, 10 faulty: p_hat = 0.4 over the
  // live stratum, reweighted by live/n = 0.5.
  const PrunedEstimate est = pruned_estimate(50, 50, 25, 10, 0.99);
  EXPECT_DOUBLE_EQ(est.rate, 0.5 * 0.4);
  const double fpc = (50.0 - 25.0) / (50.0 - 1.0);
  EXPECT_DOUBLE_EQ(est.variance, 0.25 * 0.4 * 0.6 / 25.0 * fpc);
  EXPECT_GT(est.ci_half_width, 0.0);
}

TEST(PrunedEstimate, DegenerateObservationsHaveZeroVariance) {
  // p_hat of exactly 0 or 1 carries no binomial variance.
  EXPECT_DOUBLE_EQ(pruned_estimate(10, 40, 20, 0, 0.99).variance, 0.0);
  EXPECT_DOUBLE_EQ(pruned_estimate(10, 40, 20, 20, 0.99).variance, 0.0);
  EXPECT_DOUBLE_EQ(pruned_estimate(10, 40, 20, 20, 0.99).rate, 0.8 * 1.0);
}

TEST(PrunedEstimate, WiderConfidenceWidensTheInterval) {
  const PrunedEstimate narrow = pruned_estimate(50, 50, 25, 10, 0.90);
  const PrunedEstimate wide = pruned_estimate(50, 50, 25, 10, 0.99);
  EXPECT_DOUBLE_EQ(narrow.variance, wide.variance);
  EXPECT_GT(wide.ci_half_width, narrow.ci_half_width);
}

TEST(PrunedEstimate, FinitePopulationCorrectionShrinksVariance) {
  // Sampling a larger share of the live stratum must not increase the
  // variance: the fpc factor (live - m) / (live - 1) decreases in m.
  const double var_small = pruned_estimate(0, 100, 25, 10, 0.99).variance;
  const double var_large = pruned_estimate(0, 100, 75, 30, 0.99).variance;
  EXPECT_GT(var_small, var_large);
}

TEST(PrunedEstimate, ThrowsOnInconsistentCounts) {
  EXPECT_THROW(pruned_estimate(0, 10, 11, 0, 0.99), support::SefiError);
  EXPECT_THROW(pruned_estimate(0, 10, 5, 6, 0.99), support::SefiError);
}

}  // namespace
}  // namespace sefi::stats
