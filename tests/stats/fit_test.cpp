#include "sefi/stats/fit.hpp"

#include <gtest/gtest.h>

#include <array>

#include "sefi/support/error.hpp"

namespace sefi::stats {
namespace {

TEST(FitFromAvf, PaperFormula) {
  // FIT = FIT_raw * size * AVF (§VI). 2.76e-5 FIT/bit over a 32 KB cache
  // at AVF 10%:
  const double fit = fit_from_avf(2.76e-5, 32.0 * 1024 * 8, 0.10);
  EXPECT_NEAR(fit, 0.7234, 1e-3);
}

TEST(FitFromAvf, ZeroAvfIsZero) {
  EXPECT_DOUBLE_EQ(fit_from_avf(2.76e-5, 1e6, 0.0), 0.0);
}

TEST(CrossSection, EventsOverFluence) {
  EXPECT_DOUBLE_EQ(cross_section(10, 1e12), 1e-11);
  EXPECT_DOUBLE_EQ(cross_section(10, 0), 0.0);
}

TEST(FitFromCrossSection, JedecFlux) {
  // sigma * 13 n/cm^2/h * 1e9 h.
  EXPECT_NEAR(fit_from_cross_section(1e-12), 1.3e-2, 1e-6);
}

TEST(Fluence, Accumulation) {
  EXPECT_DOUBLE_EQ(fluence_from_exposure(3.5e5, 10.0), 3.5e6);
  EXPECT_THROW(fluence_from_exposure(-1, 1), support::SefiError);
}

TEST(NaturalYears, PaperScaling) {
  // 260 beam-hours at 3.5e5 n/cm^2/s is ~2.9 M-years of natural exposure
  // (paper §IV-B).
  const double fluence = fluence_from_exposure(3.5e5, 260.0 * 3600);
  EXPECT_NEAR(natural_years_equivalent(fluence) / 1e6, 2.88, 0.1);
}

TEST(FoldDifference, DirectionAndMagnitude) {
  const FoldDifference beam_wins = fold_difference(10.0, 2.0);
  EXPECT_TRUE(beam_wins.beam_higher);
  EXPECT_DOUBLE_EQ(beam_wins.magnitude, 5.0);

  const FoldDifference fi_wins = fold_difference(2.0, 10.0);
  EXPECT_FALSE(fi_wins.beam_higher);
  EXPECT_DOUBLE_EQ(fi_wins.magnitude, 5.0);
}

TEST(FoldDifference, EqualRatesAreOnefold) {
  const FoldDifference equal = fold_difference(3.0, 3.0);
  EXPECT_DOUBLE_EQ(equal.magnitude, 1.0);
}

TEST(FoldDifference, ZeroRatesUseFloor) {
  const FoldDifference fold = fold_difference(1.0, 0.0, 1e-3);
  EXPECT_TRUE(fold.beam_higher);
  EXPECT_DOUBLE_EQ(fold.magnitude, 1000.0);
}

TEST(Mean, BasicAndEmpty) {
  const std::array<double, 3> values = {1.0, 2.0, 6.0};
  EXPECT_DOUBLE_EQ(mean(values), 3.0);
  EXPECT_DOUBLE_EQ(mean({}), 0.0);
}

TEST(Geomean, BasicAndGuards) {
  const std::array<double, 2> values = {1.0, 4.0};
  EXPECT_DOUBLE_EQ(geomean(values), 2.0);
  const std::array<double, 2> bad = {1.0, 0.0};
  EXPECT_THROW(geomean(bad), support::SefiError);
}

}  // namespace
}  // namespace sefi::stats
