#include "sefi/stats/confidence.hpp"

#include <gtest/gtest.h>

#include "sefi/support/error.hpp"

namespace sefi::stats {
namespace {

TEST(ZScore, StandardLevels) {
  EXPECT_NEAR(z_score(0.95), 1.95996, 1e-3);
  EXPECT_NEAR(z_score(0.99), 2.57583, 1e-3);
  EXPECT_NEAR(z_score(0.90), 1.64485, 1e-3);
}

TEST(ZScore, RejectsDegenerateConfidence) {
  EXPECT_THROW(z_score(0.0), support::SefiError);
  EXPECT_THROW(z_score(1.0), support::SefiError);
}

TEST(Leveugle, PaperSampleSize) {
  // The paper's campaign: ~1,000 faults give a 4% margin at 99%
  // confidence for a large population (§IV-C).
  const std::uint64_t n = leveugle_sample_size(1e12, 0.04, 0.99, 0.5);
  EXPECT_GE(n, 1000u);
  EXPECT_LE(n, 1050u);
}

TEST(Leveugle, MarginForThousandFaults) {
  // Inverse direction: 1,000 faults -> ~4% margin (paper Table IV rows
  // top out at 4.0%).
  const double margin = leveugle_error_margin(1e12, 1000, 0.99, 0.5);
  EXPECT_NEAR(margin, 0.0407, 0.001);
}

TEST(Leveugle, SmallPopulationNeedsFewerSamples) {
  const std::uint64_t small = leveugle_sample_size(2000, 0.04, 0.99, 0.5);
  const std::uint64_t large = leveugle_sample_size(1e12, 0.04, 0.99, 0.5);
  EXPECT_LT(small, large);
}

TEST(Leveugle, FullCensusHasZeroMargin) {
  EXPECT_DOUBLE_EQ(leveugle_error_margin(1000, 1000, 0.99, 0.5), 0.0);
}

TEST(Leveugle, ReadjustedMarginShrinksForExtremeAvf) {
  // The paper re-adjusts p after the campaign (Table IV: margins fall to
  // 1.7%-4.0%): an AVF far from 0.5 tightens the bound.
  const double initial = leveugle_error_margin(1e12, 1000, 0.99, 0.5);
  const double readjusted = readjusted_error_margin(1e12, 1000, 0.99, 0.05);
  EXPECT_LT(readjusted, initial);
  EXPECT_GT(readjusted, 0.0);
}

TEST(Leveugle, ReadjustedMarginCapsAtHalf) {
  // p_hat near 0.5 cannot "re-adjust" past 0.5: margin equals initial.
  const double initial = leveugle_error_margin(1e12, 1000, 0.99, 0.5);
  const double readjusted = readjusted_error_margin(1e12, 1000, 0.99, 0.49);
  EXPECT_NEAR(readjusted, initial, 1e-9);
}

TEST(Wilson, ContainsPointEstimate) {
  const Interval ci = wilson_interval(30, 100, 0.95);
  EXPECT_LT(ci.lower, 0.30);
  EXPECT_GT(ci.upper, 0.30);
  EXPECT_GT(ci.lower, 0.20);
  EXPECT_LT(ci.upper, 0.42);
}

TEST(Wilson, ZeroAndFullSuccesses) {
  const Interval none = wilson_interval(0, 50, 0.95);
  EXPECT_GE(none.lower, 0.0);
  EXPECT_GT(none.upper, 0.0);
  const Interval all = wilson_interval(50, 50, 0.95);
  EXPECT_LT(all.lower, 1.0);
  EXPECT_LE(all.upper, 1.0 + 1e-12);
}

TEST(Wilson, RejectsBadArguments) {
  EXPECT_THROW(wilson_interval(1, 0, 0.95), support::SefiError);
  EXPECT_THROW(wilson_interval(5, 4, 0.95), support::SefiError);
}

TEST(Poisson, ZeroEvents) {
  const Interval ci = poisson_interval(0, 0.95);
  EXPECT_DOUBLE_EQ(ci.lower, 0.0);
  // Exact upper bound is 3.689; Wilson-Hilferty is within a few percent.
  EXPECT_NEAR(ci.upper, 3.69, 0.2);
}

TEST(Poisson, HundredEvents) {
  const Interval ci = poisson_interval(100, 0.95);
  EXPECT_NEAR(ci.lower, 81.4, 1.5);
  EXPECT_NEAR(ci.upper, 121.6, 1.5);
}

TEST(Poisson, IntervalWidensWithConfidence) {
  const Interval c95 = poisson_interval(10, 0.95);
  const Interval c99 = poisson_interval(10, 0.99);
  EXPECT_LT(c99.lower, c95.lower);
  EXPECT_GT(c99.upper, c95.upper);
}

}  // namespace
}  // namespace sefi::stats
