#include "sefi/kernel/kernel.hpp"

#include <gtest/gtest.h>

#include "sefi/sim/cpu.hpp"
#include "sefi/sim/machine.hpp"
#include "sefi/sim/memmap.hpp"
#include "sefi/support/error.hpp"

namespace sefi::kernel {
namespace {

using isa::Assembler;
using isa::Reg;

TEST(Kernel, BuildsWithinCodeRegion) {
  const isa::Program k = build_kernel();
  EXPECT_EQ(k.base, sim::kKernelBase);
  EXPECT_LE(k.size(), sim::kKernelCodeLimit);
  EXPECT_GT(k.size(), 6u * 4);  // more than just the vector table
}

TEST(Kernel, ExposesSymbols) {
  const isa::Program k = build_kernel();
  EXPECT_NO_THROW(k.symbol("boot"));
  EXPECT_NO_THROW(k.symbol("spawn"));
  EXPECT_NO_THROW(k.symbol("irq_handler"));
  EXPECT_NO_THROW(k.symbol("svc_handler"));
  EXPECT_NO_THROW(k.symbol("panic"));
  EXPECT_NO_THROW(k.symbol("fault_common"));
}

TEST(Kernel, UserMemoryLimitTracksMappedPages) {
  KernelConfig config;
  config.mapped_pages = 256;
  EXPECT_EQ(user_memory_limit(config), 256u * 4096);
}

TEST(Kernel, RejectsBadConfigs) {
  KernelConfig too_few_kernel_pages;
  too_few_kernel_pages.kernel_pages = 4;
  EXPECT_THROW(build_kernel(too_few_kernel_pages), support::SefiError);

  KernelConfig inverted;
  inverted.mapped_pages = 8;
  inverted.kernel_pages = 16;
  EXPECT_THROW(build_kernel(inverted), support::SefiError);

  KernelConfig huge_sched;
  huge_sched.sched_footprint_words = 1u << 20;
  EXPECT_THROW(build_kernel(huge_sched), support::SefiError);
}

TEST(Kernel, TimerDisabledWhenIntervalZero) {
  KernelConfig config;
  config.timer_interval_cycles = 0;

  Assembler a(sim::kUserBase);
  // Spin long enough that the timer would have fired if enabled.
  a.mov_imm32(Reg::r1, 50'000);
  isa::Label loop = a.make_label();
  a.bind(loop);
  a.subi(Reg::r1, Reg::r1, 1);
  a.cmpi(Reg::r1, 0);
  a.b(isa::Cond::ne, loop);
  a.movi(Reg::r0, 0);
  a.movi(Reg::r7, sim::sysno::kExit);
  a.svc(0);

  sim::Machine m = sim::Machine::make_functional();
  install_system(m, build_kernel(config), a.finish(), 0x00200000);
  m.boot();
  const sim::RunEvent event = m.run(10'000'000);
  EXPECT_EQ(event.kind, sim::RunEventKind::kExit);
  EXPECT_EQ(m.jiffies(), 0u);
}

TEST(Kernel, JiffiesAdvanceInKernelDataToo) {
  Assembler a(sim::kUserBase);
  a.mov_imm32(Reg::r1, 100'000);
  isa::Label loop = a.make_label();
  a.bind(loop);
  a.subi(Reg::r1, Reg::r1, 1);
  a.cmpi(Reg::r1, 0);
  a.b(isa::Cond::ne, loop);
  a.movi(Reg::r0, 0);
  a.movi(Reg::r7, sim::sysno::kExit);
  a.svc(0);

  sim::Machine m = sim::Machine::make_functional();
  install_system(m, build_kernel(), a.finish(), 0x00200000);
  m.boot();
  const sim::RunEvent event = m.run(10'000'000);
  EXPECT_EQ(event.kind, sim::RunEventKind::kExit);
  EXPECT_GT(m.jiffies(), 0u);
  // The kernel's own jiffies variable mirrors the device count — this is
  // what the harness watchdog reads to decide app-hang vs system-hang.
  EXPECT_EQ(m.memory().read32(sim::kKernelJiffies), m.jiffies());
}

TEST(Kernel, InstallSystemRejectsKernelSpaceApps) {
  sim::Machine m = sim::Machine::make_functional();
  Assembler a(0x1000);  // inside kernel space
  a.nop();
  EXPECT_THROW(install_system(m, build_kernel(), a.finish(), 0x00200000),
               support::SefiError);
}

TEST(Kernel, CorruptedKernelCodePanics) {
  // Overwrite the svc handler's first instruction with garbage: the next
  // syscall raises undef *in kernel mode*, which must end in panic or
  // double fault — a System Crash, not an Application Crash.
  Assembler a(sim::kUserBase);
  a.movi(Reg::r7, sim::sysno::kAlive);
  a.svc(0);
  a.movi(Reg::r0, 0);
  a.movi(Reg::r7, sim::sysno::kExit);
  a.svc(0);

  const isa::Program kernel_image = build_kernel();
  sim::Machine m = sim::Machine::make_functional();
  install_system(m, kernel_image, a.finish(), 0x00200000);
  const std::uint32_t svc_addr = kernel_image.symbol("svc_handler");
  m.memory().write32(svc_addr, 0xffffffffu);
  m.boot();
  const sim::RunEvent event = m.run(10'000'000);
  EXPECT_TRUE(event.kind == sim::RunEventKind::kPanic ||
              event.kind == sim::RunEventKind::kDoubleFault)
      << static_cast<int>(event.kind);
}

}  // namespace
}  // namespace sefi::kernel
