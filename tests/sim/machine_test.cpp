// End-to-end machine tests: kernel + user application on the functional
// model. These exercise the full guest stack — boot, page tables, mode
// switches, syscalls, timer IRQs, fault handling.
#include "sefi/sim/machine.hpp"

#include <gtest/gtest.h>

#include "sefi/isa/assembler.hpp"
#include "sefi/kernel/kernel.hpp"
#include "sefi/sim/cpu.hpp"
#include "sefi/sim/memmap.hpp"

namespace sefi::sim {
namespace {

using isa::Assembler;
using isa::Cond;
using isa::Label;
using isa::Reg;

constexpr std::uint32_t kUserSp = 0x0020'0000;
constexpr std::uint64_t kBudget = 5'000'000;

void emit_exit(Assembler& a, std::uint32_t code) {
  a.mov_imm32(Reg::r0, code);
  a.movi(Reg::r7, sysno::kExit);
  a.svc(0);
}

void emit_putc(Assembler& a, char c) {
  a.movi(Reg::r0, static_cast<std::uint8_t>(c));
  a.movi(Reg::r7, sysno::kPutc);
  a.svc(0);
}

Machine booted_machine(const isa::Program& app) {
  Machine m = Machine::make_functional();
  kernel::install_system(m, kernel::build_kernel(), app, kUserSp);
  m.boot();
  return m;
}

TEST(MachineTest, BootSpawnExit) {
  Assembler a(kUserBase);
  emit_putc(a, 'h');
  emit_putc(a, 'i');
  emit_exit(a, 42);
  Machine m = booted_machine(a.finish());
  const RunEvent event = m.run(kBudget);
  EXPECT_EQ(event.kind, RunEventKind::kExit);
  EXPECT_EQ(event.payload, 42u);
  EXPECT_EQ(m.console(), "hi");
}

TEST(MachineTest, SysWriteOutputsBuffer) {
  Assembler a(kUserBase);
  Label msg = a.make_label();
  a.load_label(Reg::r0, msg);
  a.movi(Reg::r1, 5);
  a.movi(Reg::r7, sysno::kWrite);
  a.svc(0);
  emit_exit(a, 0);
  a.align(4);
  a.bind(msg);
  for (char c : {'h', 'e', 'l', 'l', 'o'}) {
    a.byte(static_cast<std::uint8_t>(c));
  }
  Machine m = booted_machine(a.finish());
  const RunEvent event = m.run(kBudget);
  EXPECT_EQ(event.kind, RunEventKind::kExit);
  EXPECT_EQ(m.console(), "hello");
}

TEST(MachineTest, SpawnClearsRegisters) {
  // The app exits with code r4 — freshly spawned registers must be zero.
  Assembler a(kUserBase);
  a.mov(Reg::r0, Reg::r4);
  a.movi(Reg::r7, sysno::kExit);
  a.svc(0);
  Machine m = booted_machine(a.finish());
  const RunEvent event = m.run(kBudget);
  EXPECT_EQ(event.kind, RunEventKind::kExit);
  EXPECT_EQ(event.payload, 0u);
}

TEST(MachineTest, UndefinedInstructionIsAppCrash) {
  Assembler a(kUserBase);
  a.word(0xffffffffu);  // invalid opcode
  Machine m = booted_machine(a.finish());
  const RunEvent event = m.run(kBudget);
  EXPECT_EQ(event.kind, RunEventKind::kAppCrash);
  EXPECT_EQ(event.payload, kernel::reason::kUndef);
}

TEST(MachineTest, KernelStoreFromUserIsAppCrash) {
  Assembler a(kUserBase);
  a.movi(Reg::r1, 0);
  a.mov_imm32(Reg::r2, kKernelDataBase);
  a.str(Reg::r1, Reg::r2, 0);
  Machine m = booted_machine(a.finish());
  const RunEvent event = m.run(kBudget);
  EXPECT_EQ(event.kind, RunEventKind::kAppCrash);
  EXPECT_EQ(event.payload, kernel::reason::kDataAbort);
}

TEST(MachineTest, JumpIntoKernelIsAppCrash) {
  Assembler a(kUserBase);
  a.movi(Reg::r1, 0x100);  // kernel code address
  a.br(Reg::r1);
  Machine m = booted_machine(a.finish());
  const RunEvent event = m.run(kBudget);
  EXPECT_EQ(event.kind, RunEventKind::kAppCrash);
  EXPECT_EQ(event.payload, kernel::reason::kPrefetchAbort);
}

TEST(MachineTest, UnmappedAccessIsAppCrash) {
  Assembler a(kUserBase);
  a.mov_imm32(Reg::r2, 0x00E0'0000);  // beyond mapped_pages
  a.ldr(Reg::r1, Reg::r2, 0);
  Machine m = booted_machine(a.finish());
  const RunEvent event = m.run(kBudget);
  EXPECT_EQ(event.kind, RunEventKind::kAppCrash);
  EXPECT_EQ(event.payload, kernel::reason::kDataAbort);
}

TEST(MachineTest, MmioAccessFromUserIsAppCrash) {
  Assembler a(kUserBase);
  a.mov_imm32(Reg::r2, kUartTx);
  a.movi(Reg::r1, 'x');
  a.str(Reg::r1, Reg::r2, 0);
  Machine m = booted_machine(a.finish());
  const RunEvent event = m.run(kBudget);
  EXPECT_EQ(event.kind, RunEventKind::kAppCrash);
  EXPECT_TRUE(m.console().empty());
}

TEST(MachineTest, BadSyscallNumberIsAppCrash) {
  Assembler a(kUserBase);
  a.movi(Reg::r7, 999);
  a.svc(0);
  Machine m = booted_machine(a.finish());
  const RunEvent event = m.run(kBudget);
  EXPECT_EQ(event.kind, RunEventKind::kAppCrash);
  EXPECT_EQ(event.payload, kernel::reason::kBadSyscall);
}

TEST(MachineTest, WriteWithKernelPointerIsAppCrash) {
  Assembler a(kUserBase);
  a.mov_imm32(Reg::r0, 0x100);  // kernel address
  a.movi(Reg::r1, 4);
  a.movi(Reg::r7, sysno::kWrite);
  a.svc(0);
  Machine m = booted_machine(a.finish());
  const RunEvent event = m.run(kBudget);
  EXPECT_EQ(event.kind, RunEventKind::kAppCrash);
  EXPECT_EQ(event.payload, kernel::reason::kBadSyscall);
}

TEST(MachineTest, PrivilegedInstructionInUserIsAppCrash) {
  Assembler a(kUserBase);
  a.hlt();
  Machine m = booted_machine(a.finish());
  const RunEvent event = m.run(kBudget);
  EXPECT_EQ(event.kind, RunEventKind::kAppCrash);
  EXPECT_EQ(event.payload, kernel::reason::kUndef);
}

TEST(MachineTest, InfiniteLoopHitsCycleLimitWithLiveKernel) {
  Assembler a(kUserBase);
  Label forever = a.make_label();
  a.bind(forever);
  a.b(forever);
  Machine m = booted_machine(a.finish());
  const RunEvent event = m.run(500'000);
  EXPECT_EQ(event.kind, RunEventKind::kCycleLimit);
  // The timer kept firing: the kernel is alive (app hang, not system hang).
  EXPECT_GT(m.jiffies(), 10u);
}

TEST(MachineTest, TimerIrqsAreTransparentToTheApp) {
  // A long-running compute loop must produce the same result regardless
  // of how many IRQs interleave.
  Assembler a(kUserBase);
  a.movi(Reg::r0, 0);
  a.movi(Reg::r1, 0);
  Label loop = a.make_label();
  a.bind(loop);
  a.add(Reg::r0, Reg::r0, Reg::r1);
  a.addi(Reg::r1, Reg::r1, 1);
  a.cmpi(Reg::r1, 5000);
  a.b(Cond::lt, loop);
  // r0 = sum 0..4999 = 12497500; report low 16 bits as exit code.
  a.mov_imm32(Reg::r2, 0xffff);
  a.and_(Reg::r0, Reg::r0, Reg::r2);
  a.movi(Reg::r7, sysno::kExit);
  a.svc(0);
  Machine m = booted_machine(a.finish());
  const RunEvent event = m.run(kBudget);
  EXPECT_EQ(event.kind, RunEventKind::kExit);
  EXPECT_EQ(event.payload, 12497500u & 0xffffu);
  EXPECT_GT(m.jiffies(), 0u);
}

TEST(MachineTest, StackPushPopWorks) {
  Assembler a(kUserBase);
  a.mov_imm32(Reg::r1, 0xabcd);
  a.push({Reg::r1});
  a.movi(Reg::r1, 0);
  a.pop({Reg::r2});
  a.mov(Reg::r0, Reg::r2);
  a.mov_imm32(Reg::r3, 0xffff);
  a.and_(Reg::r0, Reg::r0, Reg::r3);
  a.movi(Reg::r7, sysno::kExit);
  a.svc(0);
  Machine m = booted_machine(a.finish());
  const RunEvent event = m.run(kBudget);
  EXPECT_EQ(event.kind, RunEventKind::kExit);
  EXPECT_EQ(event.payload, 0xabcdu);
}

TEST(MachineTest, RespawnAfterExitRerunsApp) {
  // Beam-style session: after kExit, resuming the machine respawns the
  // app (the kernel loops back to spawn).
  Assembler a(kUserBase);
  emit_putc(a, 'x');
  emit_exit(a, 7);
  Machine m = booted_machine(a.finish());
  EXPECT_EQ(m.run(kBudget).kind, RunEventKind::kExit);
  EXPECT_EQ(m.run(kBudget).kind, RunEventKind::kExit);
  EXPECT_EQ(m.console(), "xx");
  EXPECT_GE(m.devices().alive_count(), 2u);  // boot spawn + respawn
}

TEST(MachineTest, RespawnAfterAppCrashKeepsSystemAlive) {
  Assembler a(kUserBase);
  a.word(0xffffffffu);
  Machine m = booted_machine(a.finish());
  EXPECT_EQ(m.run(kBudget).kind, RunEventKind::kAppCrash);
  EXPECT_EQ(m.run(kBudget).kind, RunEventKind::kAppCrash);
}

TEST(MachineTest, RunUntilCycleStopsAtTarget) {
  Assembler a(kUserBase);
  Label forever = a.make_label();
  a.bind(forever);
  a.b(forever);
  Machine m = booted_machine(a.finish());
  const auto event = m.run_until_cycle(10'000);
  EXPECT_FALSE(event.has_value());
  EXPECT_GE(m.cpu().cycles(), 10'000u);
}

TEST(MachineTest, AlignedAccessRequired) {
  Assembler a(kUserBase);
  a.mov_imm32(Reg::r2, kUserBase + 0x1001);  // misaligned word address
  a.ldr(Reg::r1, Reg::r2, 0);
  Machine m = booted_machine(a.finish());
  const RunEvent event = m.run(kBudget);
  EXPECT_EQ(event.kind, RunEventKind::kAppCrash);
  EXPECT_EQ(event.payload, kernel::reason::kDataAbort);
}

TEST(MachineTest, ExitCodeRoundTrips) {
  for (std::uint32_t code : {0u, 1u, 255u, 65535u}) {
    Assembler a(kUserBase);
    emit_exit(a, code);
    Machine m = booted_machine(a.finish());
    const RunEvent event = m.run(kBudget);
    EXPECT_EQ(event.kind, RunEventKind::kExit);
    EXPECT_EQ(event.payload, code);
  }
}

}  // namespace
}  // namespace sefi::sim
