// Machine checkpoint tests: save/restore must reproduce execution
// bit-exactly on both models — console output, counters, registers, and
// microarchitectural state all resume as if never interrupted.
#include <gtest/gtest.h>

#include "sefi/isa/assembler.hpp"
#include "sefi/kernel/kernel.hpp"
#include "sefi/microarch/detailed.hpp"
#include "sefi/sim/machine.hpp"
#include "sefi/support/error.hpp"
#include "sefi/workloads/workload.hpp"

namespace sefi::sim {
namespace {

Machine workload_machine(bool detailed) {
  Machine m = detailed ? microarch::make_detailed_machine()
                       : Machine::make_functional();
  const auto& w = workloads::workload_by_name("SusanE");
  kernel::install_system(m, kernel::build_kernel(),
                         w.build(workloads::kDefaultInputSeed),
                         workloads::kWorkloadStackTop);
  m.boot();
  return m;
}

class SnapshotModels : public ::testing::TestWithParam<bool> {};

TEST_P(SnapshotModels, RestoredRunMatchesUninterruptedRun) {
  // Reference: run straight to completion.
  Machine reference = workload_machine(GetParam());
  const RunEvent ref_event = reference.run(100'000'000);
  ASSERT_EQ(ref_event.kind, RunEventKind::kExit);

  // Checkpointed: run half-way, snapshot, scribble on, restore, finish.
  Machine machine = workload_machine(GetParam());
  machine.run_until_cycle(reference.cpu().cycles() / 2);
  const Machine::Snapshot snapshot = machine.save_snapshot();
  machine.run(100'000'000);  // run to completion (diverges the state)
  machine.restore_snapshot(snapshot);
  const RunEvent event = machine.run(100'000'000);

  EXPECT_EQ(event.kind, ref_event.kind);
  EXPECT_EQ(event.payload, ref_event.payload);
  EXPECT_EQ(machine.console(), reference.console());
  EXPECT_EQ(machine.cpu().cycles(), reference.cpu().cycles());
  EXPECT_EQ(machine.cpu().instructions(), reference.cpu().instructions());
  EXPECT_EQ(machine.counters().l1d_accesses,
            reference.counters().l1d_accesses);
  EXPECT_EQ(machine.counters().branch_misses,
            reference.counters().branch_misses);
}

TEST_P(SnapshotModels, RestoreRewindsArchitecturalState) {
  Machine machine = workload_machine(GetParam());
  machine.run_until_cycle(20'000);
  const Machine::Snapshot snapshot = machine.save_snapshot();
  const std::uint64_t cycles_at_snap = machine.cpu().cycles();
  const std::uint32_t pc_at_snap = machine.cpu().pc();
  const std::uint32_t r4_at_snap = machine.cpu().reg(4);

  machine.run_until_cycle(60'000);
  machine.restore_snapshot(snapshot);
  EXPECT_EQ(machine.cpu().cycles(), cycles_at_snap);
  EXPECT_EQ(machine.cpu().pc(), pc_at_snap);
  EXPECT_EQ(machine.cpu().reg(4), r4_at_snap);
}

INSTANTIATE_TEST_SUITE_P(BothModels, SnapshotModels,
                         ::testing::Values(false, true),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "Detailed" : "Functional";
                         });

TEST(Snapshot, RestoreUndoesInjectedFaults) {
  Machine machine = workload_machine(/*detailed=*/true);
  machine.run_until_cycle(15'000);
  const Machine::Snapshot snapshot = machine.save_snapshot();
  auto& model = microarch::detailed_model(machine);
  // Corrupt a swath of state.
  for (std::uint64_t bit = 0; bit < 64; ++bit) {
    model.l1d().flip_bit(bit * 37 % model.l1d().bit_count());
    model.regfile().flip_bit(bit % model.regfile().bit_count());
  }
  machine.restore_snapshot(snapshot);
  // Execution proceeds to a clean exit with golden output.
  const RunEvent event = machine.run(100'000'000);
  EXPECT_EQ(event.kind, RunEventKind::kExit);
  EXPECT_EQ(machine.console(),
            workloads::workload_by_name("SusanE").expected_console(
                workloads::kDefaultInputSeed));
}

TEST(Snapshot, CrossModelRestoreIsRejected) {
  Machine functional = workload_machine(false);
  Machine detailed = workload_machine(true);
  const Machine::Snapshot snapshot = functional.save_snapshot();
  EXPECT_THROW(detailed.restore_snapshot(snapshot), support::SefiError);
}

TEST(Snapshot, CrossGeometryRestoreIsRejected) {
  Machine a = microarch::make_detailed_machine();
  microarch::DetailedConfig other;
  other.phys_regs = 128;
  Machine b = microarch::make_detailed_machine(other);
  // The register-file state sizes differ; restoring must refuse rather
  // than silently truncate.
  EXPECT_THROW(b.restore_snapshot(a.save_snapshot()), support::SefiError);
}

}  // namespace
}  // namespace sefi::sim
