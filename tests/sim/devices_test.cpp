#include "sefi/sim/devices.hpp"

#include <gtest/gtest.h>

namespace sefi::sim {
namespace {

TEST(DeviceBlock, AddressWindow) {
  EXPECT_TRUE(DeviceBlock::contains(kUartTx));
  EXPECT_TRUE(DeviceBlock::contains(kTimerJiffies));
  EXPECT_FALSE(DeviceBlock::contains(kMmioLimit));
  EXPECT_FALSE(DeviceBlock::contains(0));
  EXPECT_FALSE(DeviceBlock::contains(kMmioBase - 4));
}

TEST(DeviceBlock, ConsoleAccumulatesBytes) {
  DeviceBlock dev;
  dev.write(kUartTx, 'h');
  dev.write(kUartTx, 'i');
  dev.write(kUartTx, 0x100 | '!');  // only the low byte matters
  EXPECT_EQ(dev.console(), "hi!");
}

TEST(DeviceBlock, HostEventsAreSingleShot) {
  DeviceBlock dev;
  EXPECT_FALSE(dev.take_host_event().has_value());
  dev.write(kHostExit, 42);
  const auto event = dev.take_host_event();
  ASSERT_TRUE(event.has_value());
  EXPECT_EQ(event->kind, HostEventKind::kExit);
  EXPECT_EQ(event->payload, 42u);
  EXPECT_FALSE(dev.take_host_event().has_value());
}

TEST(DeviceBlock, EventKindsMapToRegisters) {
  DeviceBlock dev;
  dev.write(kHostAppCrash, 3);
  EXPECT_EQ(dev.take_host_event()->kind, HostEventKind::kAppCrash);
  dev.write(kHostPanic, 1);
  EXPECT_EQ(dev.take_host_event()->kind, HostEventKind::kPanic);
}

TEST(DeviceBlock, AliveCounter) {
  DeviceBlock dev;
  EXPECT_EQ(dev.alive_count(), 0u);
  dev.write(kHostAlive, 1);
  dev.write(kHostAlive, 1);
  EXPECT_EQ(dev.alive_count(), 2u);
  EXPECT_FALSE(dev.take_host_event().has_value());  // alive is not an event
}

TEST(DeviceBlock, TimerFiresAfterInterval) {
  DeviceBlock dev;
  dev.write(kTimerInterval, 100);
  dev.write(kTimerCtrl, 1);
  dev.tick(99);
  EXPECT_FALSE(dev.irq_pending());
  dev.tick(1);
  EXPECT_TRUE(dev.irq_pending());
}

TEST(DeviceBlock, TimerAckClearsAndCountsJiffies) {
  DeviceBlock dev;
  dev.write(kTimerInterval, 10);
  dev.write(kTimerCtrl, 1);
  dev.tick(10);
  ASSERT_TRUE(dev.irq_pending());
  dev.write(kTimerAck, 1);
  EXPECT_FALSE(dev.irq_pending());
  EXPECT_EQ(dev.jiffies(), 1u);
  EXPECT_EQ(dev.read(kTimerJiffies), 1u);
}

TEST(DeviceBlock, TimerRearmsWithoutDrift) {
  DeviceBlock dev;
  dev.write(kTimerInterval, 10);
  dev.write(kTimerCtrl, 1);
  // A long instruction overshoots the deadline by 3 cycles; the next
  // period must shrink so the average rate is preserved.
  dev.tick(13);
  EXPECT_TRUE(dev.irq_pending());
  dev.write(kTimerAck, 1);
  dev.tick(6);
  EXPECT_FALSE(dev.irq_pending());
  dev.tick(1);  // 13 + 7 = 20 = second deadline
  EXPECT_TRUE(dev.irq_pending());
}

TEST(DeviceBlock, DisabledTimerNeverFires) {
  DeviceBlock dev;
  dev.write(kTimerInterval, 10);
  dev.tick(1000);
  EXPECT_FALSE(dev.irq_pending());
}

TEST(DeviceBlock, ResetClearsEverything) {
  DeviceBlock dev;
  dev.write(kUartTx, 'x');
  dev.write(kHostAlive, 1);
  dev.write(kTimerInterval, 10);
  dev.write(kTimerCtrl, 1);
  dev.tick(10);
  dev.reset();
  EXPECT_TRUE(dev.console().empty());
  EXPECT_EQ(dev.alive_count(), 0u);
  EXPECT_FALSE(dev.irq_pending());
  EXPECT_EQ(dev.jiffies(), 0u);
}

TEST(DeviceBlock, UnknownRegistersReadZero) {
  DeviceBlock dev;
  EXPECT_EQ(dev.read(kUartTx), 0u);
  EXPECT_EQ(dev.read(kMmioBase + 0x500), 0u);
}

}  // namespace
}  // namespace sefi::sim
