#include "sefi/sim/tracer.hpp"

#include <gtest/gtest.h>

#include "sefi/isa/assembler.hpp"

namespace sefi::sim {
namespace {

using isa::Assembler;
using isa::Reg;

Machine raw_machine(Assembler& a) {
  Machine m = Machine::make_functional();
  m.load_image(a.finish());
  m.boot();
  return m;
}

TEST(Tracer, RendersDisassemblyAndMode) {
  Assembler a(0);
  a.movi(Reg::r1, 42);
  a.nop();
  a.hlt();
  Machine m = raw_machine(a);
  const std::string trace = trace_execution(m, {10, false});
  EXPECT_NE(trace.find("movi r1, #42"), std::string::npos);
  EXPECT_NE(trace.find("nop"), std::string::npos);
  EXPECT_NE(trace.find("hlt"), std::string::npos);
  EXPECT_NE(trace.find("K 0x0:"), std::string::npos);  // kernel mode
  EXPECT_NE(trace.find("[cpu stopped]"), std::string::npos);
}

TEST(Tracer, ShowsRegisterDeltas) {
  Assembler a(0);
  a.movi(Reg::r3, 7);
  a.hlt();
  Machine m = raw_machine(a);
  const std::string trace = trace_execution(m);
  EXPECT_NE(trace.find("r3=0x7"), std::string::npos);
}

TEST(Tracer, RespectsInstructionLimit) {
  Assembler a(0);
  isa::Label loop = a.make_label();
  a.bind(loop);
  a.b(loop);
  Machine m = raw_machine(a);
  const std::string trace = trace_execution(m, {5, false});
  // Five lines, no stop marker.
  EXPECT_EQ(std::count(trace.begin(), trace.end(), '\n'), 5);
  EXPECT_EQ(trace.find("[cpu stopped]"), std::string::npos);
}

TEST(Tracer, MachineStateAdvancesWithTrace) {
  Assembler a(0);
  a.movi(Reg::r1, 1);
  a.movi(Reg::r2, 2);
  a.hlt();
  Machine m = raw_machine(a);
  trace_execution(m, {2, false});
  EXPECT_EQ(m.cpu().reg(2), 2u);
  EXPECT_TRUE(m.cpu().running());  // hlt not reached yet
}

}  // namespace
}  // namespace sefi::sim
