// Delta-restore round-trip tests: a restore that copies only dirty state
// must leave the machine bit-identical to a full restore — and to the
// saved image itself — after every kind of mutation the simulator can
// apply (CPU stores, backdoor/DMA writes, fault flips in all six arrays,
// device traffic, further execution).
#include <algorithm>
#include <gtest/gtest.h>

#include "sefi/kernel/kernel.hpp"
#include "sefi/microarch/detailed.hpp"
#include "sefi/sim/machine.hpp"
#include "sefi/sim/memmap.hpp"
#include "sefi/support/error.hpp"
#include "sefi/workloads/workload.hpp"

namespace sefi::sim {
namespace {

Machine workload_machine() {
  Machine m = microarch::make_detailed_machine();
  const auto& w = workloads::workload_by_name("SusanE");
  kernel::install_system(m, kernel::build_kernel(),
                         w.build(workloads::kDefaultInputSeed),
                         workloads::kWorkloadStackTop);
  m.boot();
  return m;
}

/// Scribbles on every restore-tracked state class: executes further
/// (CPU stores, cache fills, TLB inserts, device traffic), flips bits in
/// all six injectable arrays, and writes RAM through the DMA backdoor.
void mutate_everything(Machine& m) {
  m.run_until_cycle(m.cpu().cycles() + 40'000);
  auto& model = microarch::detailed_model(m);
  for (std::uint64_t bit = 0; bit < 32; ++bit) {
    model.l1i().flip_bit(bit * 131 % model.l1i().bit_count());
    model.l1d().flip_bit(bit * 137 % model.l1d().bit_count());
    model.l2().flip_bit(bit * 139 % model.l2().bit_count());
    model.itlb().flip_bit(bit % model.itlb().bit_count());
    model.dtlb().flip_bit(bit % model.dtlb().bit_count());
    model.regfile().flip_bit(bit * 7 % model.regfile().bit_count());
  }
  const std::uint8_t junk[64] = {0xAB};
  m.memory().backdoor_write(kRamSize / 2, junk);
  m.memory().backdoor_fill(kRamSize - 4096, 128, 0x5C);
}

bool ram_matches(Machine& a, const PhysicalMemory& saved) {
  const auto live = a.memory().backdoor_read(0, kRamSize);
  const auto want = saved.backdoor_read(0, kRamSize);
  return std::equal(live.begin(), live.end(), want.begin());
}

TEST(DeltaRestore, DeltaPathMatchesFullRestoreAndColdRun) {
  // Cold reference: uninterrupted run to completion.
  Machine reference = workload_machine();
  const RunEvent ref_event = reference.run(100'000'000);
  ASSERT_EQ(ref_event.kind, RunEventKind::kExit);

  Machine m = workload_machine();
  m.run_until_cycle(reference.cpu().cycles() / 2);
  const Machine::Snapshot snapshot = m.save_snapshot();

  // First restore is necessarily full (no baseline yet).
  m.restore_snapshot(snapshot);
  EXPECT_EQ(m.restore_stats().delta_restores, 0u);

  // Mutate every state class, then restore again: the delta path fires
  // and must reproduce the saved image exactly.
  mutate_everything(m);
  m.restore_snapshot(snapshot);
  EXPECT_EQ(m.restore_stats().restores, 2u);
  EXPECT_EQ(m.restore_stats().delta_restores, 1u);
  EXPECT_TRUE(ram_matches(m, snapshot.memory));

  // And the delta restore must have copied far less than the machine.
  EXPECT_LT(m.restore_stats().bytes_copied,
            2 * snapshot.resident_bytes());

  // Execution from the delta-restored state finishes bit-identically to
  // the cold run.
  const RunEvent event = m.run(100'000'000);
  EXPECT_EQ(event.kind, ref_event.kind);
  EXPECT_EQ(event.payload, ref_event.payload);
  EXPECT_EQ(m.console(), reference.console());
  EXPECT_EQ(m.cpu().cycles(), reference.cpu().cycles());
  EXPECT_EQ(m.cpu().instructions(), reference.cpu().instructions());
  EXPECT_EQ(m.counters().l1d_accesses, reference.counters().l1d_accesses);
  EXPECT_EQ(m.counters().branch_misses, reference.counters().branch_misses);
}

TEST(DeltaRestore, DisabledKnobForcesFullRestores) {
  Machine m = workload_machine();
  m.set_delta_restore(false);
  m.run_until_cycle(30'000);
  const Machine::Snapshot snapshot = m.save_snapshot();
  m.restore_snapshot(snapshot);
  mutate_everything(m);
  m.restore_snapshot(snapshot);
  EXPECT_EQ(m.restore_stats().restores, 2u);
  EXPECT_EQ(m.restore_stats().delta_restores, 0u);
  EXPECT_TRUE(ram_matches(m, snapshot.memory));
}

TEST(DeltaRestore, BootInvalidatesTheDeltaBaseline) {
  Machine m = workload_machine();
  m.run_until_cycle(30'000);
  const Machine::Snapshot snapshot = m.save_snapshot();
  m.restore_snapshot(snapshot);
  m.boot();  // untracked bulk reset: the baseline is gone
  m.restore_snapshot(snapshot);
  // Both restores must have been full — a delta here would under-copy.
  EXPECT_EQ(m.restore_stats().delta_restores, 0u);
  EXPECT_TRUE(ram_matches(m, snapshot.memory));
}

TEST(DeltaRestore, RungRestoreMatchesFullAcrossRungSwitches) {
  Machine m = workload_machine();
  m.run_until_cycle(30'000);
  const Machine::Snapshot base = m.save_snapshot();
  m.run_until_cycle(80'000);
  // Write-back caches may not have evicted anything to RAM yet; give the
  // rung a guaranteed RAM difference through the DMA backdoor so the
  // overlay bookkeeping is actually exercised.
  const std::uint8_t marker[16] = {0xD1, 0x7F};
  m.memory().backdoor_write(kRamSize - 3 * 4096, marker);
  const Machine::DeltaSnapshot rung = m.save_delta_snapshot(base);
  EXPECT_EQ(rung.base_id, base.id);
  EXPECT_GT(rung.memory.pages.size(), 0u);
  // The rung must be sparse: far fewer pages than the whole image.
  EXPECT_LT(rung.memory.pages.size(), kNumPages / 2);

  // Reference RAM image of base+rung via a full restore.
  Machine full = workload_machine();
  full.set_delta_restore(false);
  full.restore_snapshot(base, rung);
  const Machine::Snapshot composed = full.save_snapshot();

  Machine d = workload_machine();
  d.restore_snapshot(base, rung);  // full (no baseline)
  mutate_everything(d);
  d.restore_snapshot(base, rung);  // same-rung delta
  EXPECT_EQ(d.restore_stats().delta_restores, 1u);
  EXPECT_TRUE(ram_matches(d, composed.memory));

  // Switching to the base itself stays on the delta path: the pages
  // where base and rung differ are bounded by the rung's overlay.
  mutate_everything(d);
  d.restore_snapshot(base);
  EXPECT_EQ(d.restore_stats().delta_restores, 2u);
  EXPECT_TRUE(ram_matches(d, base.memory));

  // And back to the rung again — still delta, still exact.
  mutate_everything(d);
  d.restore_snapshot(base, rung);
  EXPECT_EQ(d.restore_stats().delta_restores, 3u);
  EXPECT_TRUE(ram_matches(d, composed.memory));

  // Execution equivalence: delta-restored and full-restored machines run
  // to bit-identical completion.
  const RunEvent want = full.run(100'000'000);
  const RunEvent got = d.run(100'000'000);
  EXPECT_EQ(got.kind, want.kind);
  EXPECT_EQ(got.payload, want.payload);
  EXPECT_EQ(d.console(), full.console());
  EXPECT_EQ(d.cpu().cycles(), full.cpu().cycles());
}

TEST(DeltaRestore, RungRejectsMismatchedBase) {
  Machine m = workload_machine();
  m.run_until_cycle(30'000);
  const Machine::Snapshot base = m.save_snapshot();
  m.run_until_cycle(60'000);
  const Machine::DeltaSnapshot rung = m.save_delta_snapshot(base);
  const Machine::Snapshot other = m.save_snapshot();
  EXPECT_THROW(m.restore_snapshot(other, rung), support::SefiError);
}

TEST(DeltaRestore, CrossConfigRestoreIsRejected) {
  // The counted/delta restore path must keep the cross-configuration
  // guard: restoring a snapshot from a machine with different array
  // geometry throws SefiError instead of truncating.
  Machine a = microarch::make_detailed_machine();
  microarch::DetailedConfig smaller;
  smaller.l2 = {64 * 1024, 32, 8};
  Machine b = microarch::make_detailed_machine(smaller);
  EXPECT_THROW(b.restore_snapshot(a.save_snapshot()), support::SefiError);
  // Register-file size mismatches are caught by the regfile model.
  microarch::DetailedConfig regs;
  regs.phys_regs = 128;
  Machine c = microarch::make_detailed_machine(regs);
  EXPECT_THROW(c.restore_snapshot(a.save_snapshot()), support::SefiError);
}

}  // namespace
}  // namespace sefi::sim
