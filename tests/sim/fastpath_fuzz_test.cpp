// Differential fuzzing of the predecoded-uop fast path (DESIGN.md §12).
//
// The fast path's whole claim is "bit-identical to the baseline
// interpreter, just faster". These tests generate randomized assembler
// programs — loops, conditional branches, loads/stores, float ops,
// self-modifying stores into the code page, TLB flushes — and run them
// in lockstep on two machines that differ ONLY in SEFI_FASTPATH tier,
// comparing per-step cycle counts and PCs and, at the end, every piece
// of architectural state, the perf counters, the console, and all of
// RAM. A separate test injects identical mid-run bit flips into the
// L1I and I-TLB of both machines (the stamp-invalidation path the
// campaigns rely on) and requires the chaos that follows to diverge
// nowhere.
#include <gtest/gtest.h>

#include <cstring>
#include <random>

#include "sefi/isa/assembler.hpp"
#include "sefi/microarch/detailed.hpp"
#include "sefi/sim/machine.hpp"
#include "sefi/sim/memmap.hpp"

namespace sefi::sim {
namespace {

using isa::Assembler;
using isa::Cond;
using isa::Label;
using isa::Reg;

constexpr std::uint32_t kScratchBase = 0x4000;  // data region, off the code
constexpr std::uint64_t kMaxSteps = 20'000;     // far past any program end

Reg pick_data_reg(std::mt19937& rng) {
  // r1..r8 are fuzzed data registers; r9..r12 are reserved by the
  // generator (loop counter, scratch base, patch address, patch word).
  return static_cast<Reg>(std::uniform_int_distribution<int>(1, 8)(rng));
}

/// Assembles a single instruction and returns its encoding word (the
/// payload for self-modifying stores).
template <typename EmitFn>
std::uint32_t assemble_one(EmitFn emit) {
  Assembler a(0);
  emit(a);
  const isa::Program p = a.finish();
  std::uint32_t word = 0;
  std::memcpy(&word, p.bytes.data(), 4);
  return word;
}

/// Emits one random body instruction. Generated programs only ever read
/// or write r1..r8 and the scratch region, so they cannot escape the
/// loop skeleton.
void emit_random_op(Assembler& a, std::mt19937& rng) {
  const Reg rd = pick_data_reg(rng);
  const Reg rn = pick_data_reg(rng);
  const Reg rm = pick_data_reg(rng);
  const int imm8 = std::uniform_int_distribution<int>(0, 255)(rng);
  switch (std::uniform_int_distribution<int>(0, 17)(rng)) {
    case 0: a.add(rd, rn, rm); break;
    case 1: a.sub(rd, rn, rm); break;
    case 2: a.eor(rd, rn, rm); break;
    case 3: a.orr(rd, rn, rm); break;
    case 4: a.mul(rd, rn, rm); break;
    case 5: a.udiv(rd, rn, rm); break;
    case 6: a.sdiv(rd, rn, rm); break;
    case 7: a.addi(rd, rn, imm8); break;
    case 8: a.eori(rd, rn, imm8); break;
    case 9: a.lsli(rd, rn, imm8 % 32); break;
    case 10: a.asri(rd, rn, imm8 % 32); break;
    case 11:  // conditional branch-over: exercises cond_holds + predictor
    {
      const Cond conds[] = {Cond::eq, Cond::ne, Cond::lt, Cond::ge,
                            Cond::cc, Cond::cs};
      a.cmp(rn, rm);
      Label skip = a.make_label();
      a.b(conds[imm8 % 6], skip);
      a.sub(rd, rd, rm);
      a.bind(skip);
      break;
    }
    case 12: a.str(rd, Reg::r10, (imm8 % 32) * 4); break;
    case 13: a.ldr(rd, Reg::r10, (imm8 % 32) * 4); break;
    case 14: a.strb(rd, Reg::r10, imm8 % 128); break;
    case 15: a.ldrh(rd, Reg::r10, (imm8 % 64) * 2); break;
    case 16: a.fadd(rd, rn, rm); break;
    case 17: a.fmul(rd, rn, rm); break;
  }
}

/// Builds one randomized program: register init, a counted loop of
/// random ops with an embedded patch site, optionally a self-modifying
/// store that rewrites the patch site mid-loop, and an occasional
/// tlbflush (a global-stamp invalidation in the middle of hot code).
isa::Program make_fuzz_program(std::uint32_t seed) {
  std::mt19937 rng(seed);
  Assembler a(0);
  const bool self_modify = (seed % 2) == 0;
  const bool flush_tlbs = (seed % 3) == 0;

  const std::uint32_t patch_word = assemble_one([&](Assembler& p) {
    switch (seed % 3) {
      case 0: p.addi(Reg::r4, Reg::r4, 1); break;
      case 1: p.eor(Reg::r3, Reg::r3, Reg::r5); break;
      default: p.mul(Reg::r2, Reg::r2, Reg::r6); break;
    }
  });

  a.movi(Reg::r10, kScratchBase);
  for (int r = 1; r <= 8; ++r) {
    a.mov_imm32(static_cast<Reg>(r),
                static_cast<std::uint32_t>(rng()));
  }
  Label patch_site = a.make_label();
  if (self_modify) {
    a.mov_imm32(Reg::r12, patch_word);
    a.load_label(Reg::r11, patch_site);
  }
  a.movi(Reg::r9, std::uniform_int_distribution<int>(20, 60)(rng));

  Label loop = a.make_label();
  a.bind(loop);
  const int body_ops = std::uniform_int_distribution<int>(10, 20)(rng);
  const int patch_at = std::uniform_int_distribution<int>(0, body_ops)(rng);
  for (int i = 0; i < body_ops; ++i) {
    emit_random_op(a, rng);
    if (i == patch_at && self_modify) a.str(Reg::r12, Reg::r11);
  }
  a.bind(patch_site);
  a.nop();  // overwritten mid-run when self_modify is on
  if (flush_tlbs) a.tlbflush();
  a.subi(Reg::r9, Reg::r9, 1);
  a.cmpi(Reg::r9, 0);
  a.b(Cond::ne, loop);
  a.hlt();
  return a.finish();
}

/// Boots a detailed machine at `tier` with `program` loaded.
Machine make_machine(const isa::Program& program, FastPath tier) {
  Machine m = microarch::make_detailed_machine();
  m.cpu().set_fastpath(tier);
  m.load_image(program);
  m.boot();
  return m;
}

/// Full post-run comparison: architectural state, counters, console,
/// and every RAM byte.
void expect_identical(Machine& ref, Machine& dut, std::uint32_t seed) {
  const Cpu::State a = ref.cpu().save_state();
  const Cpu::State b = dut.cpu().save_state();
  EXPECT_EQ(a.pc, b.pc) << "seed " << seed;
  EXPECT_EQ(a.cpsr, b.cpsr) << "seed " << seed;
  EXPECT_EQ(a.elr, b.elr) << "seed " << seed;
  EXPECT_EQ(a.spsr, b.spsr) << "seed " << seed;
  EXPECT_EQ(a.banked_usp, b.banked_usp) << "seed " << seed;
  EXPECT_EQ(a.in_exception, b.in_exception) << "seed " << seed;
  EXPECT_EQ(a.stop, b.stop) << "seed " << seed;
  EXPECT_EQ(a.cycles, b.cycles) << "seed " << seed;
  EXPECT_EQ(a.instructions, b.instructions) << "seed " << seed;
  for (unsigned r = 0; r < 16; ++r) {
    EXPECT_EQ(ref.cpu().reg(r), dut.cpu().reg(r))
        << "r" << r << ", seed " << seed;
  }
  const PerfCounters& ca = ref.counters();
  const PerfCounters& cb = dut.counters();
  EXPECT_EQ(ca.cycles, cb.cycles) << "seed " << seed;
  EXPECT_EQ(ca.instructions, cb.instructions) << "seed " << seed;
  EXPECT_EQ(ca.branches, cb.branches) << "seed " << seed;
  EXPECT_EQ(ca.branch_misses, cb.branch_misses) << "seed " << seed;
  EXPECT_EQ(ca.l1i_misses, cb.l1i_misses) << "seed " << seed;
  EXPECT_EQ(ca.itlb_misses, cb.itlb_misses) << "seed " << seed;
  EXPECT_EQ(ca.l1d_misses, cb.l1d_misses) << "seed " << seed;
  EXPECT_EQ(ref.console(), dut.console()) << "seed " << seed;
  const auto ram_a = ref.memory().backdoor_read(0, kRamSize);
  const auto ram_b = dut.memory().backdoor_read(0, kRamSize);
  EXPECT_EQ(0, std::memcmp(ram_a.data(), ram_b.data(), kRamSize))
      << "RAM divergence, seed " << seed;
}

/// Steps both machines in lockstep to completion, comparing per-step
/// cycles and PC so a divergence is pinned to the exact instruction.
/// `at_step` runs before each step (fault-injection hook).
template <typename HookFn>
void run_lockstep(Machine& ref, Machine& dut, std::uint32_t seed,
                  HookFn at_step) {
  for (std::uint64_t s = 0; s < kMaxSteps; ++s) {
    if (!ref.cpu().running() && !dut.cpu().running()) break;
    at_step(s);
    const std::uint64_t ca = ref.cpu().step();
    const std::uint64_t cb = dut.cpu().step();
    ASSERT_EQ(ca, cb) << "cycle divergence at step " << s << ", pc 0x"
                      << std::hex << ref.cpu().pc() << ", seed " << std::dec
                      << seed;
    ASSERT_EQ(ref.cpu().pc(), dut.cpu().pc())
        << "pc divergence at step " << s << ", seed " << seed;
  }
  expect_identical(ref, dut, seed);
}

void no_hook(std::uint64_t) {}

TEST(FastpathFuzz, DecodeTierMatchesBaseline) {
  for (std::uint32_t seed = 1; seed <= 8; ++seed) {
    const isa::Program program = make_fuzz_program(seed);
    Machine ref = make_machine(program, FastPath::kOff);
    Machine dut = make_machine(program, FastPath::kDecode);
    run_lockstep(ref, dut, seed, no_hook);
    if (HasFatalFailure()) return;
  }
}

TEST(FastpathFuzz, BlockTierMatchesBaseline) {
  for (std::uint32_t seed = 1; seed <= 12; ++seed) {
    const isa::Program program = make_fuzz_program(seed);
    Machine ref = make_machine(program, FastPath::kOff);
    Machine dut = make_machine(program, FastPath::kBlock);
    run_lockstep(ref, dut, seed, no_hook);
    if (HasFatalFailure()) return;
    // The tier must actually engage, or the test proves nothing.
    EXPECT_GT(dut.cpu().uop_stats().hits, 0u) << "seed " << seed;
  }
}

TEST(FastpathFuzz, BlockTierSurvivesInjectedBitFlips) {
  for (std::uint32_t seed = 100; seed < 112; ++seed) {
    const isa::Program program = make_fuzz_program(seed);
    Machine ref = make_machine(program, FastPath::kOff);
    Machine dut = make_machine(program, FastPath::kBlock);
    microarch::DetailedModel& dref = microarch::detailed_model(ref);
    microarch::DetailedModel& ddut = microarch::detailed_model(dut);
    // Identical flips into fetch-path state on both machines, planted at
    // the same step: one L1I bit (tag/valid/data — whatever the index
    // lands on) and one I-TLB bit. The block tier must notice via the
    // stamp bump and fall back to real fetches, reproducing whatever the
    // corrupted fetch path does on the baseline.
    std::mt19937 rng(seed * 7919);
    const std::uint64_t flip_step =
        std::uniform_int_distribution<std::uint64_t>(50, 400)(rng);
    const std::uint64_t l1i_bit = rng() % dref.l1i().bit_count();
    const std::uint64_t itlb_bit = rng() % dref.itlb().bit_count();
    run_lockstep(ref, dut, seed, [&](std::uint64_t s) {
      if (s == flip_step) {
        dref.l1i().flip_bit(l1i_bit);
        ddut.l1i().flip_bit(l1i_bit);
        dref.itlb().flip_bit(itlb_bit);
        ddut.itlb().flip_bit(itlb_bit);
      }
    });
    if (HasFatalFailure()) return;
  }
}

TEST(FastpathFuzz, FunctionalModelTiersAgree) {
  // The functional model advertises no ifetch purity (stamp 0), so the
  // block tier must quietly degrade to decode behavior — and both must
  // still match the baseline exactly.
  for (std::uint32_t seed = 200; seed < 206; ++seed) {
    const isa::Program program = make_fuzz_program(seed);
    Machine ref = Machine::make_functional();
    ref.cpu().set_fastpath(FastPath::kOff);
    ref.load_image(program);
    ref.boot();
    Machine dut = Machine::make_functional();
    dut.cpu().set_fastpath(FastPath::kBlock);
    dut.load_image(program);
    dut.boot();
    run_lockstep(ref, dut, seed, no_hook);
    if (HasFatalFailure()) return;
    EXPECT_EQ(dut.cpu().uop_stats().hits, 0u) << "seed " << seed;
    EXPECT_GT(dut.cpu().uop_stats().decode_hits, 0u) << "seed " << seed;
  }
}

}  // namespace
}  // namespace sefi::sim
