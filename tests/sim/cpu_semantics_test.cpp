// Instruction-level semantics tests.
//
// Each test assembles a tiny raw program at the reset vector (the CPU
// starts there in kernel mode with the MMU off), ends it with HLT, runs
// it on the functional machine, and inspects architectural registers.
// This pins down the ISA's arithmetic, flag, shift, float, and memory
// semantics independently of the kernel and workloads.
#include <gtest/gtest.h>

#include <bit>
#include <limits>

#include "sefi/isa/assembler.hpp"
#include "sefi/sim/machine.hpp"

namespace sefi::sim {
namespace {

using isa::Assembler;
using isa::Cond;
using isa::Label;
using isa::Reg;

/// Runs a raw kernel-mode program (already ending in hlt) and returns the
/// machine for register inspection.
Machine run_raw(Assembler& a) {
  Machine m = Machine::make_functional();
  m.load_image(a.finish());
  m.boot();
  const RunEvent event = m.run(1'000'000);
  EXPECT_EQ(event.kind, RunEventKind::kHalted);
  return m;
}

TEST(CpuSemantics, MoviMovtComposition) {
  Assembler a(0);
  a.mov_imm32(Reg::r1, 0xDEADBEEF);
  a.movi(Reg::r2, 0xFFFF);
  a.movt(Reg::r2, 0x1234);  // keeps the low half
  a.hlt();
  Machine m = run_raw(a);
  EXPECT_EQ(m.cpu().reg(1), 0xDEADBEEFu);
  EXPECT_EQ(m.cpu().reg(2), 0x1234FFFFu);
}

TEST(CpuSemantics, ArithmeticWrapsModulo32) {
  Assembler a(0);
  a.mov_imm32(Reg::r1, 0xFFFFFFFF);
  a.addi(Reg::r2, Reg::r1, 1);         // wraps to 0
  a.mov_imm32(Reg::r3, 0x80000000);
  a.sub(Reg::r4, Reg::r2, Reg::r3);    // 0 - INT_MIN wraps
  a.hlt();
  Machine m = run_raw(a);
  EXPECT_EQ(m.cpu().reg(2), 0u);
  EXPECT_EQ(m.cpu().reg(4), 0x80000000u);
}

TEST(CpuSemantics, DivisionEdgeCases) {
  Assembler a(0);
  a.mov_imm32(Reg::r1, 0x80000000);  // INT_MIN
  a.mov_imm32(Reg::r2, 0xFFFFFFFF);  // -1
  a.sdiv(Reg::r3, Reg::r1, Reg::r2); // wraps to INT_MIN (ARM semantics)
  a.movi(Reg::r4, 0);
  a.sdiv(Reg::r5, Reg::r1, Reg::r4); // divide by zero -> 0
  a.udiv(Reg::r6, Reg::r1, Reg::r4); // divide by zero -> 0
  a.movi(Reg::r7, 7);
  a.mov_imm32(Reg::r8, 100);
  a.sdiv(Reg::r9, Reg::r8, Reg::r7); // 14 (truncating)
  a.hlt();
  Machine m = run_raw(a);
  EXPECT_EQ(m.cpu().reg(3), 0x80000000u);
  EXPECT_EQ(m.cpu().reg(5), 0u);
  EXPECT_EQ(m.cpu().reg(6), 0u);
  EXPECT_EQ(m.cpu().reg(9), 14u);
}

TEST(CpuSemantics, SignedDivisionTruncatesTowardZero) {
  Assembler a(0);
  a.mov_imm32(Reg::r1, static_cast<std::uint32_t>(-7));
  a.movi(Reg::r2, 2);
  a.sdiv(Reg::r3, Reg::r1, Reg::r2);  // -3, not -4
  a.hlt();
  Machine m = run_raw(a);
  EXPECT_EQ(static_cast<std::int32_t>(m.cpu().reg(3)), -3);
}

TEST(CpuSemantics, ShiftsUseLowFiveBitsOfRegister) {
  Assembler a(0);
  a.movi(Reg::r1, 1);
  a.movi(Reg::r2, 33);               // & 31 -> 1
  a.lsl(Reg::r3, Reg::r1, Reg::r2);  // 2
  a.mov_imm32(Reg::r4, 0x80000000);
  a.asri(Reg::r5, Reg::r4, 31);      // arithmetic -> all ones
  a.lsri(Reg::r6, Reg::r4, 31);      // logical -> 1
  a.hlt();
  Machine m = run_raw(a);
  EXPECT_EQ(m.cpu().reg(3), 2u);
  EXPECT_EQ(m.cpu().reg(5), 0xFFFFFFFFu);
  EXPECT_EQ(m.cpu().reg(6), 1u);
}

TEST(CpuSemantics, ConditionalBranchesAfterCompare) {
  // r10 accumulates a bitmask of which conditions held for 5 vs 7.
  Assembler a(0);
  a.movi(Reg::r10, 0);
  a.movi(Reg::r1, 5);
  a.movi(Reg::r2, 7);
  a.cmp(Reg::r1, Reg::r2);
  struct Case {
    Cond cond;
    std::uint32_t bit;
  };
  const Case cases[] = {
      {Cond::eq, 1u << 0}, {Cond::ne, 1u << 1}, {Cond::lt, 1u << 2},
      {Cond::ge, 1u << 3}, {Cond::cc, 1u << 4},  // unsigned <
      {Cond::cs, 1u << 5},                       // unsigned >=
  };
  for (const Case& c : cases) {
    // Branch-over pattern: set the bit iff the condition holds.
    a.cmp(Reg::r1, Reg::r2);
    Label taken = a.make_label();
    Label after = a.make_label();
    a.b(c.cond, taken);
    a.b(after);
    a.bind(taken);
    a.orri(Reg::r10, Reg::r10, static_cast<std::int32_t>(c.bit));
    a.bind(after);
  }
  a.hlt();
  Machine m = run_raw(a);
  // 5 < 7: ne, lt, cc hold; eq, ge, cs don't.
  EXPECT_EQ(m.cpu().reg(10),
            (1u << 1) | (1u << 2) | (1u << 4));
}

TEST(CpuSemantics, UnsignedCompareDiffersFromSigned) {
  Assembler a(0);
  a.mov_imm32(Reg::r1, 0xFFFFFFFF);  // -1 signed, UINT_MAX unsigned
  a.movi(Reg::r2, 1);
  a.cmp(Reg::r1, Reg::r2);
  a.movi(Reg::r3, 0);
  a.movi(Reg::r4, 0);
  Label not_lt = a.make_label();
  a.b(Cond::ge, not_lt);
  a.movi(Reg::r3, 1);  // signed less
  a.bind(not_lt);
  Label not_hi = a.make_label();
  a.b(Cond::ls, not_hi);
  a.movi(Reg::r4, 1);  // unsigned greater
  a.bind(not_hi);
  a.hlt();
  Machine m = run_raw(a);
  EXPECT_EQ(m.cpu().reg(3), 1u);  // -1 < 1 signed
  EXPECT_EQ(m.cpu().reg(4), 1u);  // UINT_MAX > 1 unsigned
}

TEST(CpuSemantics, FloatArithmeticBitExact) {
  Assembler a(0);
  a.mov_float(Reg::r1, 1.5f);
  a.mov_float(Reg::r2, 2.25f);
  a.fadd(Reg::r3, Reg::r1, Reg::r2);
  a.fmul(Reg::r4, Reg::r1, Reg::r2);
  a.fsub(Reg::r5, Reg::r1, Reg::r2);
  a.fdiv(Reg::r6, Reg::r2, Reg::r1);
  a.fsqrt(Reg::r7, Reg::r2);
  a.hlt();
  Machine m = run_raw(a);
  EXPECT_EQ(std::bit_cast<float>(m.cpu().reg(3)), 3.75f);
  EXPECT_EQ(std::bit_cast<float>(m.cpu().reg(4)), 3.375f);
  EXPECT_EQ(std::bit_cast<float>(m.cpu().reg(5)), -0.75f);
  EXPECT_EQ(std::bit_cast<float>(m.cpu().reg(6)), 1.5f);
  EXPECT_EQ(std::bit_cast<float>(m.cpu().reg(7)), 1.5f);
}

TEST(CpuSemantics, FloatIntConversions) {
  Assembler a(0);
  a.mov_float(Reg::r1, -2.75f);
  a.fcvtws(Reg::r2, Reg::r1);  // truncates toward zero -> -2
  a.mov_imm32(Reg::r3, static_cast<std::uint32_t>(-5));
  a.fcvtsw(Reg::r4, Reg::r3);  // -5.0f
  a.mov_float(Reg::r5, 3e9f);  // beyond INT_MAX
  a.fcvtws(Reg::r6, Reg::r5);  // saturates
  a.hlt();
  Machine m = run_raw(a);
  EXPECT_EQ(static_cast<std::int32_t>(m.cpu().reg(2)), -2);
  EXPECT_EQ(std::bit_cast<float>(m.cpu().reg(4)), -5.0f);
  EXPECT_EQ(static_cast<std::int32_t>(m.cpu().reg(6)),
            std::numeric_limits<std::int32_t>::max());
}

TEST(CpuSemantics, FloatCompareConditions) {
  Assembler a(0);
  a.mov_float(Reg::r1, 1.0f);
  a.mov_float(Reg::r2, 2.0f);
  a.fcmp(Reg::r1, Reg::r2);
  a.movi(Reg::r3, 0);
  Label ge = a.make_label();
  a.b(Cond::ge, ge);
  a.movi(Reg::r3, 1);  // less
  a.bind(ge);
  a.fcmp(Reg::r2, Reg::r2);
  a.movi(Reg::r4, 0);
  Label ne = a.make_label();
  a.b(Cond::ne, ne);
  a.movi(Reg::r4, 1);  // equal
  a.bind(ne);
  a.hlt();
  Machine m = run_raw(a);
  EXPECT_EQ(m.cpu().reg(3), 1u);
  EXPECT_EQ(m.cpu().reg(4), 1u);
}

TEST(CpuSemantics, SubWordMemoryAccesses) {
  Assembler a(0);
  a.mov_imm32(Reg::r1, 0x4000);
  a.mov_imm32(Reg::r2, 0xA1B2C3D4);
  a.str(Reg::r2, Reg::r1, 0);
  a.ldrb(Reg::r3, Reg::r1, 0);   // LE low byte
  a.ldrb(Reg::r4, Reg::r1, 3);   // LE high byte
  a.ldrh(Reg::r5, Reg::r1, 2);   // high half
  a.movi(Reg::r6, 0xEE);
  a.strb(Reg::r6, Reg::r1, 1);
  a.ldr(Reg::r7, Reg::r1, 0);
  a.hlt();
  Machine m = run_raw(a);
  EXPECT_EQ(m.cpu().reg(3), 0xD4u);
  EXPECT_EQ(m.cpu().reg(4), 0xA1u);
  EXPECT_EQ(m.cpu().reg(5), 0xA1B2u);
  EXPECT_EQ(m.cpu().reg(7), 0xA1B2EED4u);
}

TEST(CpuSemantics, RegisterOffsetAddressing) {
  Assembler a(0);
  a.mov_imm32(Reg::r1, 0x4000);
  a.movi(Reg::r2, 8);
  a.mov_imm32(Reg::r3, 0x12345678);
  a.strr(Reg::r3, Reg::r1, Reg::r2);
  a.ldr(Reg::r4, Reg::r1, 8);
  a.hlt();
  Machine m = run_raw(a);
  EXPECT_EQ(m.cpu().reg(4), 0x12345678u);
}

TEST(CpuSemantics, BranchAndLinkSetsReturnAddress) {
  Assembler a(0);
  Label fn = a.make_label();
  Label after = a.make_label();
  a.movi(Reg::r1, 0);
  a.bl(fn);
  a.bind(after);
  a.addi(Reg::r1, Reg::r1, 100);
  a.hlt();
  a.bind(fn);
  a.addi(Reg::r1, Reg::r1, 1);
  a.ret();
  Machine m = run_raw(a);
  EXPECT_EQ(m.cpu().reg(1), 101u);
}

TEST(CpuSemantics, IndirectCallViaBlr) {
  Assembler a(0);
  Label fn = a.make_label();
  a.load_label(Reg::r2, fn);
  a.movi(Reg::r1, 0);
  a.blr(Reg::r2);
  a.addi(Reg::r1, Reg::r1, 10);
  a.hlt();
  a.bind(fn);
  a.addi(Reg::r1, Reg::r1, 1);
  a.ret();
  Machine m = run_raw(a);
  EXPECT_EQ(m.cpu().reg(1), 11u);
}

TEST(CpuSemantics, PushPopRoundTripsMultipleRegisters) {
  Assembler a(0);
  a.mov_imm32(Reg::sp, 0x6000);
  a.movi(Reg::r1, 11);
  a.movi(Reg::r2, 22);
  a.movi(Reg::r3, 33);
  a.push({Reg::r1, Reg::r2, Reg::r3});
  a.movi(Reg::r1, 0);
  a.movi(Reg::r2, 0);
  a.movi(Reg::r3, 0);
  a.pop({Reg::r4, Reg::r5, Reg::r6});
  a.hlt();
  Machine m = run_raw(a);
  EXPECT_EQ(m.cpu().reg(4), 11u);
  EXPECT_EQ(m.cpu().reg(5), 22u);
  EXPECT_EQ(m.cpu().reg(6), 33u);
  EXPECT_EQ(m.cpu().reg(13), 0x6000u);
}

TEST(CpuSemantics, MulLowBitsOnly) {
  Assembler a(0);
  a.mov_imm32(Reg::r1, 0x10001);
  a.mov_imm32(Reg::r2, 0x10001);
  a.mul(Reg::r3, Reg::r1, Reg::r2);  // 0x100020001 -> low 32: 0x00020001
  a.hlt();
  Machine m = run_raw(a);
  EXPECT_EQ(m.cpu().reg(3), 0x00020001u);
}

}  // namespace
}  // namespace sefi::sim
