#include "sefi/report/render.hpp"

#include <gtest/gtest.h>

namespace sefi::report {
namespace {

core::WorkloadComparison make_comparison(const std::string& name,
                                         double beam_events_scale,
                                         core::FiFitRates fi_fit) {
  core::WorkloadComparison c;
  c.workload = name;
  c.beam.workload = name;
  c.beam.sdc = static_cast<std::uint64_t>(2 * beam_events_scale);
  c.beam.app_crash = static_cast<std::uint64_t>(6 * beam_events_scale);
  c.beam.sys_crash = static_cast<std::uint64_t>(20 * beam_events_scale);
  c.beam.fluence_per_cm2 = 13.0 * 1e9;  // FIT == event count
  c.fi_fit = fi_fit;
  return c;
}

fi::WorkloadFiResult make_fi_result(const std::string& name, double margin) {
  fi::WorkloadFiResult result;
  result.workload = name;
  for (std::size_t i = 0; i < result.components.size(); ++i) {
    auto& comp = result.components[i];
    comp.component = static_cast<microarch::ComponentKind>(i);
    comp.bits = 1000;
    comp.counts = {80, 10, 6, 4};
    comp.error_margin = margin;
  }
  return result;
}

TEST(Table1, ListsAllLayers) {
  const std::string out = render_table1({
      {"Software (native)", "host loop", 2e9},
      {"Architecture", "SEFI functional model", 2e7},
      {"Microarchitecture", "SEFI detailed model", 2e5},
      {"RTL", "gate-level ALU proxy", 6e2},
  });
  EXPECT_NE(out.find("TABLE I"), std::string::npos);
  EXPECT_NE(out.find("Microarchitecture"), std::string::npos);
  EXPECT_NE(out.find("2.00e+09"), std::string::npos);
  EXPECT_NE(out.find("6.00e+02"), std::string::npos);
}

TEST(Table2, EchoesConfiguredGeometry) {
  core::LabConfig config;
  config.fi.rig.uarch = core::scaled_uarch();
  const std::string out = render_table2(config);
  EXPECT_NE(out.find("TABLE II"), std::string::npos);
  EXPECT_NE(out.find("4 KB 4-way"), std::string::npos);
  EXPECT_NE(out.find("64 KB 8-way"), std::string::npos);
  EXPECT_NE(out.find("SEFI-A9"), std::string::npos);
}

TEST(Table3, ListsAllThirteenBenchmarks) {
  const std::string out = render_table3();
  EXPECT_NE(out.find("TABLE III"), std::string::npos);
  for (const workloads::Workload* w : workloads::all_workloads()) {
    EXPECT_NE(out.find(w->info().name), std::string::npos) << w->info().name;
  }
  EXPECT_NE(out.find("26.6 MB file"), std::string::npos);  // paper input
}

TEST(Table4, ComputesMinMaxAvg) {
  const std::vector<fi::WorkloadFiResult> sweep = {
      make_fi_result("A", 0.02),
      make_fi_result("B", 0.04),
  };
  const std::string out = render_table4(sweep);
  EXPECT_NE(out.find("TABLE IV"), std::string::npos);
  EXPECT_NE(out.find("2 %"), std::string::npos);   // min
  EXPECT_NE(out.find("4 %"), std::string::npos);   // max
  EXPECT_NE(out.find("3 %"), std::string::npos);   // avg
  EXPECT_NE(out.find("RegFile"), std::string::npos);
  EXPECT_NE(out.find("DTLB"), std::string::npos);
}

TEST(Fig3, RendersFitColumns) {
  beam::BeamResult result;
  result.workload = "CRC32";
  result.runs = 600;
  result.sdc = 13;
  result.fluence_per_cm2 = 13.0 * 1e9;
  const std::string out = render_fig3({result});
  EXPECT_NE(out.find("FIG 3"), std::string::npos);
  EXPECT_NE(out.find("CRC32"), std::string::npos);
  EXPECT_NE(out.find("13"), std::string::npos);
}

TEST(Fig4, RendersPerComponentRows) {
  const std::string out = render_fig4({make_fi_result("Qsort", 0.03)});
  EXPECT_NE(out.find("FIG 4"), std::string::npos);
  EXPECT_NE(out.find("Qsort"), std::string::npos);
  EXPECT_NE(out.find("L1I"), std::string::npos);
  EXPECT_NE(out.find("80"), std::string::npos);  // masked %
}

TEST(Fig5, RendersConvertedRates) {
  const std::string out =
      render_fig5({{"FFT", {1.5, 0.25, 0.1}}}, 2.76e-5);
  EXPECT_NE(out.find("FIG 5"), std::string::npos);
  EXPECT_NE(out.find("FFT"), std::string::npos);
  EXPECT_NE(out.find("2.76e-05"), std::string::npos);
  EXPECT_NE(out.find("1.5"), std::string::npos);
}

TEST(FoldFigures, DirectionSigns) {
  // Beam SDC FIT = 2; make FI higher (5) for one workload and lower (1)
  // for another: bars must carry opposite signs.
  const std::vector<core::WorkloadComparison> sweep = {
      make_comparison("FiHigher", 1.0, {5.0, 0.1, 0.1}),
      make_comparison("BeamHigher", 1.0, {1.0, 0.1, 0.1}),
  };
  const std::string out = render_fold_figure("FIG 6: SDC", "sdc", sweep);
  EXPECT_NE(out.find("FIG 6"), std::string::npos);
  EXPECT_NE(out.find("-2.5x"), std::string::npos);  // 5 / 2
  EXPECT_NE(out.find("+2x"), std::string::npos);    // 2 / 1
}

TEST(FoldFigures, AllClassesRender) {
  const std::vector<core::WorkloadComparison> sweep = {
      make_comparison("W", 1.0, {1.0, 1.0, 1.0}),
  };
  for (const char* clazz : {"sdc", "app", "sys", "sdc+app"}) {
    const std::string out = render_fold_figure("T", clazz, sweep);
    EXPECT_NE(out.find("W"), std::string::npos) << clazz;
  }
}

TEST(Fig10, RendersSandwich) {
  core::AggregateComparison agg;
  agg.beam_sdc = 4.0;
  agg.beam_sdc_app = 10.0;
  agg.beam_total = 30.0;
  agg.fi_sdc = 3.0;
  agg.fi_sdc_app = 3.3;
  agg.fi_total = 3.4;
  const std::string out = render_fig10(agg);
  EXPECT_NE(out.find("FIG 10"), std::string::npos);
  EXPECT_NE(out.find("SDC + AppCrash"), std::string::npos);
  EXPECT_NE(out.find("Total"), std::string::npos);
  // Total gap 30/3.4 = 8.82x.
  EXPECT_NE(out.find("8.82x"), std::string::npos);
}

}  // namespace
}  // namespace sefi::report
