// Workload validation: every guest benchmark must reproduce its host
// mirror's output exactly on both microarchitecture models. This is the
// strongest end-to-end check of the whole stack (ISA semantics, CPU,
// caches, TLBs, MMU, kernel, syscalls).
#include "sefi/workloads/workload.hpp"

#include <gtest/gtest.h>

#include "sefi/kernel/kernel.hpp"
#include "sefi/microarch/detailed.hpp"
#include "sefi/sim/machine.hpp"
#include "sefi/support/error.hpp"

namespace sefi::workloads {
namespace {

constexpr std::uint64_t kCycleBudget = 80'000'000;

struct GuestRun {
  sim::RunEventKind kind;
  std::uint32_t code;
  std::string console;
  std::uint64_t instructions;
};

GuestRun run_workload(const Workload& w, std::uint64_t seed, bool detailed) {
  sim::Machine m = detailed ? microarch::make_detailed_machine()
                            : sim::Machine::make_functional();
  kernel::install_system(m, kernel::build_kernel(), w.build(seed),
                         kWorkloadStackTop);
  m.boot();
  const sim::RunEvent event = m.run(kCycleBudget);
  return {event.kind, event.payload, m.console(), m.cpu().instructions()};
}

class WorkloadSuite : public ::testing::TestWithParam<const Workload*> {};

TEST_P(WorkloadSuite, FunctionalMatchesHostMirror) {
  const Workload& w = *GetParam();
  const GuestRun run = run_workload(w, kDefaultInputSeed, /*detailed=*/false);
  EXPECT_EQ(run.kind, sim::RunEventKind::kExit) << w.info().name;
  EXPECT_EQ(run.code, 0u) << w.info().name;
  EXPECT_EQ(run.console, w.expected_console(kDefaultInputSeed))
      << w.info().name;
}

TEST_P(WorkloadSuite, DetailedMatchesHostMirror) {
  const Workload& w = *GetParam();
  const GuestRun run = run_workload(w, kDefaultInputSeed, /*detailed=*/true);
  EXPECT_EQ(run.kind, sim::RunEventKind::kExit) << w.info().name;
  EXPECT_EQ(run.console, w.expected_console(kDefaultInputSeed))
      << w.info().name;
}

TEST_P(WorkloadSuite, SecondSeedAlsoMatches) {
  const Workload& w = *GetParam();
  const std::uint64_t seed = 0xBEEF;
  const GuestRun run = run_workload(w, seed, /*detailed=*/false);
  EXPECT_EQ(run.kind, sim::RunEventKind::kExit) << w.info().name;
  EXPECT_EQ(run.console, w.expected_console(seed)) << w.info().name;
}

TEST_P(WorkloadSuite, BuildIsDeterministic) {
  const Workload& w = *GetParam();
  const isa::Program p1 = w.build(kDefaultInputSeed);
  const isa::Program p2 = w.build(kDefaultInputSeed);
  EXPECT_EQ(p1.bytes, p2.bytes);
  EXPECT_EQ(p1.entry, p2.entry);
}

TEST_P(WorkloadSuite, RunSizeIsCampaignable) {
  // Campaigns run tens of thousands of executions; keep each one within
  // a sane instruction budget (and non-trivially large).
  const Workload& w = *GetParam();
  const GuestRun run = run_workload(w, kDefaultInputSeed, /*detailed=*/false);
  EXPECT_GT(run.instructions, 10'000u) << w.info().name;
  EXPECT_LT(run.instructions, 2'000'000u) << w.info().name;
}

TEST_P(WorkloadSuite, InfoIsPopulated) {
  const WorkloadInfo& info = GetParam()->info();
  EXPECT_FALSE(info.name.empty());
  EXPECT_FALSE(info.input.empty());
  EXPECT_FALSE(info.characteristics.empty());
  EXPECT_FALSE(info.paper_input.empty());
}

std::vector<const Workload*> suite_with_l1() {
  auto list = all_workloads();
  for (const Workload* w : extended_workloads()) list.push_back(w);
  list.push_back(&l1_pattern_workload());
  return list;
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, WorkloadSuite, ::testing::ValuesIn(suite_with_l1()),
    [](const ::testing::TestParamInfo<const Workload*>& info) {
      return info.param->info().name;
    });

TEST(WorkloadRegistry, ThirteenBenchmarksInPaperOrder) {
  const auto& all = all_workloads();
  ASSERT_EQ(all.size(), 13u);
  const char* expected[] = {
      "CRC32",     "Dijkstra",  "FFT",          "JpegC",  "JpegD",
      "MatMul",    "Qsort",     "RijndaelE",    "RijndaelD",
      "StringSearch", "SusanC", "SusanE",       "SusanS",
  };
  for (std::size_t i = 0; i < all.size(); ++i) {
    EXPECT_EQ(all[i]->info().name, expected[i]);
  }
}

TEST(WorkloadRegistry, LookupByName) {
  EXPECT_EQ(&workload_by_name("FFT"), all_workloads()[2]);
  EXPECT_EQ(&workload_by_name("L1Pattern"), &l1_pattern_workload());
  EXPECT_THROW(workload_by_name("nope"), support::SefiError);
}

TEST(WorkloadRegistry, ExtendedSuiteIsSeparate) {
  const auto& extended = extended_workloads();
  ASSERT_EQ(extended.size(), 4u);
  EXPECT_EQ(extended[0]->info().name, "SHA");
  EXPECT_EQ(extended[1]->info().name, "BitCount");
  EXPECT_EQ(extended[2]->info().name, "Adpcm");
  EXPECT_EQ(extended[3]->info().name, "BasicMath");
  // Extended kernels are reachable by name but not part of the paper's 13.
  EXPECT_EQ(&workload_by_name("SHA"), extended[0]);
  for (const Workload* w : all_workloads()) {
    for (const Workload* e : extended) {
      EXPECT_NE(w->info().name, e->info().name);
    }
  }
}

TEST(WorkloadRegistry, DistinctSeedsChangeOutputs) {
  // Inputs actually flow into results: different seeds give different
  // consoles for data-driven benchmarks.
  for (const char* name : {"CRC32", "Qsort", "MatMul", "FFT"}) {
    const Workload& w = workload_by_name(name);
    EXPECT_NE(w.expected_console(1), w.expected_console(2)) << name;
  }
}

}  // namespace
}  // namespace sefi::workloads
