// Fault-free equivalence guard for the harden transforms: every hardened
// variant of every workload must behave exactly like the baseline when no
// fault is injected — byte-identical console output, exit 0, and no trip
// to the detection handler. A transform bug (bad shadow bookkeeping, a
// signature mismatch on a legal path, a clobbered scratch register) shows
// up here as a console diff or a spurious "!detected!".
#include "sefi/harden/harden.hpp"

#include <gtest/gtest.h>

#include "sefi/kernel/kernel.hpp"
#include "sefi/microarch/detailed.hpp"
#include "sefi/sim/machine.hpp"
#include "sefi/support/error.hpp"
#include "sefi/workloads/workload.hpp"

namespace sefi::harden {
namespace {

using workloads::kDefaultInputSeed;
using workloads::kWorkloadStackTop;
using workloads::Workload;

// Hardened code multiplies the dynamic instruction count; give the
// heaviest variant (tmr+cfcss on the largest workload) generous room.
constexpr std::uint64_t kCycleBudget = 1'200'000'000;

struct HardenedRun {
  sim::RunEventKind kind;
  std::uint32_t code;
  std::string console;
  std::uint64_t instructions;
};

HardenedRun run_hardened(const Workload& w, HardenMode mode, bool detailed,
                         const HardenOptions& options = {}) {
  const isa::Program hardened = apply(w.build(kDefaultInputSeed), mode, options);
  sim::Machine m = detailed ? microarch::make_detailed_machine()
                            : sim::Machine::make_functional();
  kernel::install_system(m, kernel::build_kernel(), hardened,
                         kWorkloadStackTop);
  m.boot();
  const sim::RunEvent event = m.run(kCycleBudget);
  return {event.kind, event.payload, m.console(), m.cpu().instructions()};
}

struct Case {
  const Workload* workload;
  HardenMode mode;
};

class HardenEquivalence : public ::testing::TestWithParam<Case> {};

TEST_P(HardenEquivalence, FaultFreeConsoleMatchesBaseline) {
  const auto& [workload, mode] = GetParam();
  const HardenedRun run = run_hardened(*workload, mode, /*detailed=*/false);
  EXPECT_EQ(run.kind, sim::RunEventKind::kExit);
  EXPECT_EQ(run.code, 0u);
  EXPECT_EQ(run.console, workload->expected_console(kDefaultInputSeed));
  EXPECT_EQ(run.console.find(kDetectConsole), std::string::npos);
}

std::vector<Case> all_cases() {
  std::vector<Case> cases;
  for (const Workload* w : workloads::all_workloads()) {
    for (const HardenMode mode : kAllHardenModes) {
      if (mode == HardenMode::kOff) continue;  // covered by workload_test
      cases.push_back({w, mode});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, HardenEquivalence, ::testing::ValuesIn(all_cases()),
    [](const ::testing::TestParamInfo<Case>& info) {
      std::string name = info.param.workload->info().name + "_" +
                         harden_mode_name(info.param.mode);
      for (char& c : name) {
        if (c == '+') c = '_';
      }
      return name;
    });

// The detailed (cache/TLB/pipeline) model executes the same hardened
// image; one representative per technique keeps the runtime sane.
TEST(HardenEquivalenceDetailed, RepresentativePerMode) {
  for (const HardenMode mode :
       {HardenMode::kDwc, HardenMode::kTmr, HardenMode::kTmrCfcss}) {
    const Workload& w = workloads::workload_by_name("CRC32");
    const HardenedRun run = run_hardened(w, mode, /*detailed=*/true);
    EXPECT_EQ(run.kind, sim::RunEventKind::kExit) << harden_mode_name(mode);
    EXPECT_EQ(run.console, w.expected_console(kDefaultInputSeed))
        << harden_mode_name(mode);
  }
}

// The muted twin must be the same size as the detecting build (it is the
// layout-identical control for the detection-soundness test) and equally
// transparent fault-free.
TEST(HardenMutedTwin, LayoutIdenticalAndTransparent) {
  const Workload& w = workloads::workload_by_name("Qsort");
  const isa::Program base = w.build(kDefaultInputSeed);
  for (const HardenMode mode : {HardenMode::kDwc, HardenMode::kTmrCfcss}) {
    const isa::Program armed = apply(base, mode);
    const isa::Program muted = apply(base, mode, {.mute_detection = true});
    EXPECT_EQ(armed.bytes.size(), muted.bytes.size())
        << harden_mode_name(mode);
    EXPECT_EQ(armed.entry, muted.entry);
    HardenedRun run =
        run_hardened(w, mode, /*detailed=*/false, {.mute_detection = true});
    EXPECT_EQ(run.console, w.expected_console(kDefaultInputSeed))
        << harden_mode_name(mode);
  }
}

// Transform accounting sanity: hardening inserts real work and CFCSS
// actually forms and checks blocks.
TEST(HardenReportTest, CountsArePopulated) {
  const Workload& w = workloads::workload_by_name("Dijkstra");
  const isa::Program base = w.build(kDefaultInputSeed);
  HardenReport report;
  const isa::Program hardened = apply(base, HardenMode::kTmrCfcss, {}, &report);
  EXPECT_GT(hardened.bytes.size(), base.bytes.size());
  EXPECT_GT(report.original_instructions, 0u);
  EXPECT_GT(report.inserted_instructions, 0u);
  EXPECT_GT(report.blocks, 1u);
  EXPECT_GT(report.checked_blocks, 0u);
  EXPECT_GT(report.sync_checks, 0u);

  HardenReport off_report;
  const isa::Program same = apply(base, HardenMode::kOff, {}, &off_report);
  EXPECT_EQ(same.bytes, base.bytes);
  EXPECT_EQ(off_report.inserted_instructions, 0u);
}

TEST(HardenModeNames, RoundTrip) {
  for (const HardenMode mode : kAllHardenModes) {
    EXPECT_EQ(harden_mode_from_name(harden_mode_name(mode)), mode);
  }
  EXPECT_THROW(harden_mode_from_name("dmr"), support::SefiError);
}

}  // namespace
}  // namespace sefi::harden
