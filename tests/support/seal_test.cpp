#include "sefi/support/seal.hpp"

#include <gtest/gtest.h>

#include <string>

namespace sefi::support {
namespace {

TEST(Seal, RoundTripsPayloadBitIdentically) {
  const std::string payload = "fi v5\nworkload CRC32\ncomponent 0 bits 7\n";
  const std::string sealed = seal(payload);
  EXPECT_GT(sealed.size(), payload.size());
  const auto unsealed = unseal(sealed);
  ASSERT_TRUE(unsealed.has_value());
  EXPECT_EQ(*unsealed, payload);
}

TEST(Seal, RoundTripsEmptyAndBinaryPayloads) {
  for (const std::string payload :
       {std::string(), std::string("no trailing newline"),
        std::string("\0\xff\x01 binary", 9)}) {
    const auto unsealed = unseal(seal(payload));
    ASSERT_TRUE(unsealed.has_value());
    EXPECT_EQ(*unsealed, payload);
  }
}

TEST(Seal, FooterIsOneTerminatedLine) {
  const std::string sealed = seal("body\n");
  EXPECT_EQ(sealed.back(), '\n');
  EXPECT_NE(sealed.find("body\nfnv1a "), std::string::npos);
}

TEST(Seal, RejectsUnsealedText) {
  EXPECT_FALSE(unseal("").has_value());
  EXPECT_FALSE(unseal("plain text with no footer\n").has_value());
  EXPECT_FALSE(unseal("fi v4\nworkload CRC32\n").has_value());
}

TEST(Seal, RejectsTruncationAtEveryOffset) {
  const std::string sealed = seal("fi v5\nworkload Qsort\nruns 10 sdc 2\n");
  for (std::size_t len = 0; len < sealed.size(); ++len) {
    EXPECT_FALSE(unseal(sealed.substr(0, len)).has_value())
        << "truncation to " << len << " bytes unsealed";
  }
}

TEST(Seal, RejectsEverySingleBitFlip) {
  const std::string sealed = seal("beam v5\nworkload FFT\nruns 600\n");
  for (std::size_t i = 0; i < sealed.size(); ++i) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string tampered = sealed;
      tampered[i] = static_cast<char>(tampered[i] ^ (1 << bit));
      EXPECT_FALSE(unseal(tampered).has_value())
          << "bit " << bit << " of byte " << i << " flipped undetected";
    }
  }
}

TEST(Seal, RejectsAppendedBytes) {
  const std::string sealed = seal("payload\n");
  EXPECT_FALSE(unseal(sealed + "x").has_value());
  EXPECT_FALSE(unseal(sealed + "\n").has_value());
}

}  // namespace
}  // namespace sefi::support
