#include "sefi/support/env.hpp"

#include <gtest/gtest.h>

#include <cstdlib>

namespace sefi::support {
namespace {

// Every test mutates the real environment, so each one uses its own
// variable name and calls env::refresh() after ::setenv/::unsetenv —
// the helper snapshots a variable on first read for the process
// lifetime otherwise.

void set(const char* name, const char* value) {
  ASSERT_EQ(::setenv(name, value, 1), 0);
  env::refresh();
}

void unset(const char* name) {
  ASSERT_EQ(::unsetenv(name), 0);
  env::refresh();
}

TEST(EnvU64, ParsesPlainDigits) {
  set("SEFI_TEST_U64_PLAIN", "1234567890123");
  EXPECT_EQ(env::u64("SEFI_TEST_U64_PLAIN", 7), 1234567890123ull);
  unset("SEFI_TEST_U64_PLAIN");
}

TEST(EnvU64, UnsetFallsBack) {
  unset("SEFI_TEST_U64_UNSET");
  EXPECT_EQ(env::u64("SEFI_TEST_U64_UNSET", 42), 42u);
}

TEST(EnvU64, EmptyFallsBack) {
  set("SEFI_TEST_U64_EMPTY", "");
  EXPECT_EQ(env::u64("SEFI_TEST_U64_EMPTY", 42), 42u);
  unset("SEFI_TEST_U64_EMPTY");
}

TEST(EnvU64, WhitespacePaddingAccepted) {
  set("SEFI_TEST_U64_PAD", "  64 ");
  EXPECT_EQ(env::u64("SEFI_TEST_U64_PAD", 0), 64u);
  unset("SEFI_TEST_U64_PAD");
}

TEST(EnvU64, MalformedFallsBack) {
  // strtoull would have quietly accepted the first three of these
  // (trailing junk, negative wraparound, hex); the strict parser
  // refuses anything that is not a pure digit run.
  for (const char* bad : {"12x", "-1", "0x10", "not_a_number", "1 2", "+3"}) {
    set("SEFI_TEST_U64_BAD", bad);
    EXPECT_EQ(env::u64("SEFI_TEST_U64_BAD", 99), 99u) << "value: " << bad;
  }
  unset("SEFI_TEST_U64_BAD");
}

TEST(EnvU64, OverflowFallsBack) {
  set("SEFI_TEST_U64_MAX", "18446744073709551615");  // exactly 2^64-1
  EXPECT_EQ(env::u64("SEFI_TEST_U64_MAX", 0), 18446744073709551615ull);
  set("SEFI_TEST_U64_MAX", "18446744073709551616");  // 2^64: overflow
  EXPECT_EQ(env::u64("SEFI_TEST_U64_MAX", 5), 5u);
  set("SEFI_TEST_U64_MAX", "99999999999999999999999999");
  EXPECT_EQ(env::u64("SEFI_TEST_U64_MAX", 5), 5u);
  unset("SEFI_TEST_U64_MAX");
}

TEST(EnvFlag, RecognizedSpellings) {
  for (const char* yes : {"1", "true", "on", "yes", "TRUE", "On", "YES"}) {
    set("SEFI_TEST_FLAG", yes);
    EXPECT_TRUE(env::flag("SEFI_TEST_FLAG", false)) << "value: " << yes;
  }
  for (const char* no : {"0", "false", "off", "no", "FALSE", "Off", "NO"}) {
    set("SEFI_TEST_FLAG", no);
    EXPECT_FALSE(env::flag("SEFI_TEST_FLAG", true)) << "value: " << no;
  }
  unset("SEFI_TEST_FLAG");
}

TEST(EnvFlag, UnsetAndGarbageFallBack) {
  unset("SEFI_TEST_FLAG_G");
  EXPECT_TRUE(env::flag("SEFI_TEST_FLAG_G", true));
  EXPECT_FALSE(env::flag("SEFI_TEST_FLAG_G", false));
  for (const char* bad : {"", "2", "maybe", "yess", "onn"}) {
    set("SEFI_TEST_FLAG_G", bad);
    EXPECT_TRUE(env::flag("SEFI_TEST_FLAG_G", true)) << "value: " << bad;
    EXPECT_FALSE(env::flag("SEFI_TEST_FLAG_G", false)) << "value: " << bad;
  }
  unset("SEFI_TEST_FLAG_G");
}

TEST(EnvStr, EmptyButSetIsNotUnset) {
  set("SEFI_TEST_STR", "hello");
  EXPECT_EQ(env::str("SEFI_TEST_STR", "fb"), "hello");
  set("SEFI_TEST_STR", "");
  EXPECT_EQ(env::str("SEFI_TEST_STR", "fb"), "");
  unset("SEFI_TEST_STR");
  EXPECT_EQ(env::str("SEFI_TEST_STR", "fb"), "fb");
}

TEST(EnvRaw, NulloptWhenUnset) {
  unset("SEFI_TEST_RAW");
  EXPECT_FALSE(env::raw("SEFI_TEST_RAW").has_value());
  set("SEFI_TEST_RAW", "v");
  ASSERT_TRUE(env::raw("SEFI_TEST_RAW").has_value());
  EXPECT_EQ(*env::raw("SEFI_TEST_RAW"), "v");
  unset("SEFI_TEST_RAW");
}

TEST(EnvCache, FirstReadWinsUntilRefresh) {
  set("SEFI_TEST_CACHE", "1");
  EXPECT_EQ(env::u64("SEFI_TEST_CACHE", 0), 1u);
  // Mutate without refresh(): the snapshot must still answer.
  ASSERT_EQ(::setenv("SEFI_TEST_CACHE", "2", 1), 0);
  EXPECT_EQ(env::u64("SEFI_TEST_CACHE", 0), 1u);
  env::refresh();
  EXPECT_EQ(env::u64("SEFI_TEST_CACHE", 0), 2u);
  unset("SEFI_TEST_CACHE");
}

}  // namespace
}  // namespace sefi::support
