#include "sefi/support/bits.hpp"

#include <gtest/gtest.h>

#include <array>

namespace sefi::support {
namespace {

TEST(ExtractBits, BasicFields) {
  EXPECT_EQ(extract_bits(0xdeadbeef, 0, 4), 0xfu);
  EXPECT_EQ(extract_bits(0xdeadbeef, 4, 4), 0xeu);
  EXPECT_EQ(extract_bits(0xdeadbeef, 28, 4), 0xdu);
  EXPECT_EQ(extract_bits(0xdeadbeef, 0, 32), 0xdeadbeefu);
}

TEST(InsertBits, RoundTripsWithExtract) {
  std::uint32_t v = 0;
  v = insert_bits(v, 26, 6, 0x2a);
  v = insert_bits(v, 22, 4, 0x5);
  v = insert_bits(v, 0, 18, 0x3ffff);
  EXPECT_EQ(extract_bits(v, 26, 6), 0x2au);
  EXPECT_EQ(extract_bits(v, 22, 4), 0x5u);
  EXPECT_EQ(extract_bits(v, 0, 18), 0x3ffffu);
}

TEST(InsertBits, MasksOversizedField) {
  const std::uint32_t v = insert_bits(0, 0, 4, 0xff);
  EXPECT_EQ(v, 0xfu);
}

TEST(SignExtend, PositiveAndNegative) {
  EXPECT_EQ(sign_extend(0x7f, 8), 127);
  EXPECT_EQ(sign_extend(0x80, 8), -128);
  EXPECT_EQ(sign_extend(0xff, 8), -1);
  EXPECT_EQ(sign_extend(0x1ffff, 18), 0x1ffff);
  EXPECT_EQ(sign_extend(0x20000, 18), -131072);
}

TEST(IsPow2, Classification) {
  EXPECT_FALSE(is_pow2(0));
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(2));
  EXPECT_FALSE(is_pow2(3));
  EXPECT_TRUE(is_pow2(1ull << 40));
  EXPECT_FALSE(is_pow2((1ull << 40) + 1));
}

TEST(Log2Exact, PowersOfTwo) {
  EXPECT_EQ(log2_exact(1), 0u);
  EXPECT_EQ(log2_exact(2), 1u);
  EXPECT_EQ(log2_exact(32), 5u);
  EXPECT_EQ(log2_exact(1ull << 20), 20u);
}

TEST(FlipBit, TogglesAndRestores) {
  std::array<std::uint8_t, 4> buf{};
  flip_bit(buf, 0);
  EXPECT_EQ(buf[0], 0x01);
  flip_bit(buf, 7);
  EXPECT_EQ(buf[0], 0x81);
  flip_bit(buf, 8);
  EXPECT_EQ(buf[1], 0x01);
  flip_bit(buf, 8);
  EXPECT_EQ(buf[1], 0x00);
}

TEST(TestBit, MatchesFlips) {
  std::array<std::uint8_t, 8> buf{};
  for (std::uint64_t bit : {0ull, 5ull, 17ull, 63ull}) {
    EXPECT_FALSE(test_bit(buf, bit));
    flip_bit(buf, bit);
    EXPECT_TRUE(test_bit(buf, bit));
  }
}

}  // namespace
}  // namespace sefi::support
