#include "sefi/support/journal.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

namespace sefi::support {
namespace {

namespace fs = std::filesystem;

/// Fresh journal path per test (ctest runs tests in parallel processes).
class JournalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    dir_ = (fs::temp_directory_path() /
            (std::string("sefi-journal-") + info->name())).string();
    fs::remove_all(dir_);
    path_ = dir_ + "/campaign.journal";
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string read_raw() const {
    std::ifstream in(path_, std::ios::binary);
    return std::string(std::istreambuf_iterator<char>(in), {});
  }

  void write_raw(const std::string& bytes) const {
    std::ofstream out(path_, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }

  void append_raw(const std::string& bytes) const {
    std::ofstream out(path_, std::ios::binary | std::ios::app);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }

  std::string dir_;
  std::string path_;
};

TEST_F(JournalTest, RecordsReplayAcrossReopen) {
  {
    TaskJournal journal(path_, "fi test-campaign");
    EXPECT_EQ(journal.replayed(), 0u);
    EXPECT_EQ(journal.lookup(3), nullptr);
    EXPECT_TRUE(journal.record(3, "o 1"));
    EXPECT_TRUE(journal.record(7, "o 0"));
    ASSERT_NE(journal.lookup(3), nullptr);
    EXPECT_EQ(*journal.lookup(3), "o 1");
  }
  TaskJournal reopened(path_, "fi test-campaign");
  EXPECT_EQ(reopened.replayed(), 2u);
  ASSERT_NE(reopened.lookup(3), nullptr);
  EXPECT_EQ(*reopened.lookup(3), "o 1");
  ASSERT_NE(reopened.lookup(7), nullptr);
  EXPECT_EQ(*reopened.lookup(7), "o 0");
  EXPECT_EQ(reopened.lookup(0), nullptr);
}

TEST_F(JournalTest, MultiLinePayloadsRoundTrip) {
  // Beam results journal as multi-line serialized text; the length
  // prefix (not line structure) must delimit the payload.
  const std::string payload = "b FFT 600\nline two\n\nrec 9 3\nhdr 1";
  {
    TaskJournal journal(path_, "beam sweep");
    EXPECT_TRUE(journal.record(0, payload));
    EXPECT_TRUE(journal.record(1, ""));  // empty payload is valid too
  }
  TaskJournal reopened(path_, "beam sweep");
  EXPECT_EQ(reopened.replayed(), 2u);
  ASSERT_NE(reopened.lookup(0), nullptr);
  EXPECT_EQ(*reopened.lookup(0), payload);
  ASSERT_NE(reopened.lookup(1), nullptr);
  EXPECT_EQ(*reopened.lookup(1), "");
}

TEST_F(JournalTest, ReRecordedIndexLastWins) {
  {
    TaskJournal journal(path_, "fi retry");
    EXPECT_TRUE(journal.record(5, "o 4"));  // first attempt: harness error
    EXPECT_TRUE(journal.record(5, "o 2"));  // later attempt succeeded
    ASSERT_NE(journal.lookup(5), nullptr);
    EXPECT_EQ(*journal.lookup(5), "o 2");
  }
  TaskJournal reopened(path_, "fi retry");
  EXPECT_EQ(reopened.replayed(), 1u);  // one index, despite two records
  ASSERT_NE(reopened.lookup(5), nullptr);
  EXPECT_EQ(*reopened.lookup(5), "o 2");
}

TEST_F(JournalTest, TornTailIsTruncatedNeverParsed) {
  std::string intact;
  {
    TaskJournal journal(path_, "fi torn");
    journal.record(0, "o 0");
    journal.record(1, "o 3");
    intact = read_raw();
  }
  {
    TaskJournal full(path_, "fi torn");
    EXPECT_EQ(full.replayed(), 2u);
  }
  // Kill the process at every byte of a third append: the two sealed
  // records must survive, the torn tail must be dropped byte-exactly.
  std::string third;
  {
    TaskJournal journal(path_, "fi torn");
    journal.record(2, "o 1");
    third = read_raw().substr(intact.size());
  }
  ASSERT_GT(third.size(), 0u);
  for (std::size_t len = 0; len < third.size(); ++len) {
    write_raw(intact + third.substr(0, len));
    TaskJournal reopened(path_, "fi torn");
    EXPECT_EQ(reopened.replayed(), 2u) << "torn tail of " << len << " bytes";
    EXPECT_EQ(reopened.lookup(2), nullptr) << len;
    ASSERT_NE(reopened.lookup(1), nullptr) << len;
    EXPECT_EQ(*reopened.lookup(1), "o 3");
    // The tail was physically truncated, so the next append lands on a
    // record boundary and survives another reopen.
    EXPECT_EQ(read_raw(), intact) << len;
    EXPECT_TRUE(reopened.record(2, "o 1"));
  }
  TaskJournal final_check(path_, "fi torn");
  EXPECT_EQ(final_check.replayed(), 3u);
}

TEST_F(JournalTest, GarbageTailIsDiscarded) {
  {
    TaskJournal journal(path_, "fi garbage");
    journal.record(4, "o 2");
  }
  append_raw("not a record at all\x01\x02\xff");
  TaskJournal reopened(path_, "fi garbage");
  EXPECT_EQ(reopened.replayed(), 1u);
  ASSERT_NE(reopened.lookup(4), nullptr);
  EXPECT_EQ(*reopened.lookup(4), "o 2");
}

TEST_F(JournalTest, HeaderMismatchDiscardsTheFile) {
  {
    TaskJournal journal(path_, "fi config-A");
    journal.record(0, "o 1");
    journal.record(1, "o 1");
  }
  // A different campaign identity (config change, format bump) must not
  // resume from the stale records — wrong results would be worse than
  // recomputation.
  TaskJournal other(path_, "fi config-B");
  EXPECT_EQ(other.replayed(), 0u);
  EXPECT_EQ(other.lookup(0), nullptr);
  EXPECT_TRUE(other.record(0, "o 3"));
  // And the file now belongs to config-B: reopening as A starts fresh.
  TaskJournal back(path_, "fi config-A");
  EXPECT_EQ(back.replayed(), 0u);
}

TEST_F(JournalTest, MissingFileStartsFresh) {
  TaskJournal journal(path_, "fi fresh");
  EXPECT_EQ(journal.replayed(), 0u);
  EXPECT_TRUE(fs::exists(path_));  // header written eagerly
  EXPECT_EQ(journal.path(), path_);
  EXPECT_EQ(journal.header(), "fi fresh");
}

TEST_F(JournalTest, RemoveDeletesTheFile) {
  TaskJournal journal(path_, "fi done");
  journal.record(0, "o 0");
  ASSERT_TRUE(fs::exists(path_));
  EXPECT_TRUE(journal.remove());
  EXPECT_FALSE(fs::exists(path_));
  EXPECT_FALSE(journal.remove());  // second remove: nothing to do
}

TEST_F(JournalTest, InspectIsReadOnly) {
  {
    TaskJournal journal(path_, "fi inspect");
    journal.record(0, "o 0");
    journal.record(9, "o 2");
  }
  append_raw("torn");
  const std::string before = read_raw();
  const TaskJournal::Status status = TaskJournal::inspect(path_);
  EXPECT_TRUE(status.present);
  EXPECT_EQ(status.header, "fi inspect");
  EXPECT_EQ(status.records, 2u);
  EXPECT_EQ(status.torn_bytes, 4u);
  EXPECT_EQ(read_raw(), before);  // inspect never truncates

  EXPECT_FALSE(TaskJournal::inspect(dir_ + "/absent.journal").present);
  write_raw("garbage with no header");
  const TaskJournal::Status bad = TaskJournal::inspect(path_);
  EXPECT_FALSE(bad.present);
  EXPECT_EQ(bad.records, 0u);
  EXPECT_GT(bad.torn_bytes, 0u);
}

TEST_F(JournalTest, ConcurrentRecordsAllSurvive) {
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 50;
  {
    TaskJournal journal(path_, "fi hammer");
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&journal, t] {
        for (std::uint64_t i = 0; i < kPerThread; ++i) {
          const std::uint64_t index =
              static_cast<std::uint64_t>(t) * kPerThread + i;
          ASSERT_TRUE(journal.record(index, "o " + std::to_string(t % 5)));
        }
      });
    }
    for (auto& thread : threads) thread.join();
  }
  TaskJournal reopened(path_, "fi hammer");
  EXPECT_EQ(reopened.replayed(), kThreads * kPerThread);
  for (int t = 0; t < kThreads; ++t) {
    const std::uint64_t index = static_cast<std::uint64_t>(t) * kPerThread;
    ASSERT_NE(reopened.lookup(index), nullptr);
    EXPECT_EQ(*reopened.lookup(index), "o " + std::to_string(t % 5));
  }
}

}  // namespace
}  // namespace sefi::support
