#include "sefi/support/hash.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace sefi::support {
namespace {

TEST(Fnv1a, EmptyIsOffsetBasis) {
  Fnv1a h;
  EXPECT_EQ(h.digest(), kFnvOffsetBasis);
}

TEST(Fnv1a, KnownVector) {
  // FNV-1a 64-bit of "a" is a published test vector.
  EXPECT_EQ(fnv1a("a"), 0xaf63dc4c8601ec8cULL);
}

TEST(Fnv1a, IncrementalMatchesOneShot) {
  Fnv1a h;
  h.update("hello ");
  h.update("world");
  EXPECT_EQ(h.digest(), fnv1a("hello world"));
}

TEST(Fnv1a, ByteSpanMatchesString) {
  const std::vector<std::uint8_t> bytes = {'a', 'b', 'c'};
  EXPECT_EQ(fnv1a(bytes), fnv1a("abc"));
}

TEST(Fnv1a, SensitiveToSingleBit) {
  EXPECT_NE(fnv1a("abc"), fnv1a("abd"));
  EXPECT_NE(fnv1a("abc"), fnv1a("abcd"));
}

}  // namespace
}  // namespace sefi::support
