#include "sefi/support/strings.hpp"

#include <gtest/gtest.h>

namespace sefi::support {
namespace {

TEST(FormatSig, TrimsAndRounds) {
  EXPECT_EQ(format_sig(1.0), "1");
  EXPECT_EQ(format_sig(1.234567, 3), "1.23");
  EXPECT_EQ(format_sig(0.034, 2), "0.034");
  EXPECT_EQ(format_sig(287.4, 3), "287");
}

TEST(FormatSci, TwoDecimals) {
  EXPECT_EQ(format_sci(2.76e-5), "2.76e-05");
  EXPECT_EQ(format_sci(0.0), "0.00e+00");
}

TEST(Pad, LeftAndRight) {
  EXPECT_EQ(pad_left("ab", 5), "   ab");
  EXPECT_EQ(pad_right("ab", 5), "ab   ");
  EXPECT_EQ(pad_left("abcdef", 3), "abcdef");
}

TEST(Split, KeepsEmptyFields) {
  const auto parts = split("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
  EXPECT_EQ(parts[3], "");
}

TEST(Split, NoSeparator) {
  const auto parts = split("abc", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "abc");
}

}  // namespace
}  // namespace sefi::support
