#include "sefi/support/fsio.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <thread>
#include <vector>

namespace sefi::support {
namespace {

namespace fs = std::filesystem;

class FsioTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Per-test directory: ctest runs each test in its own parallel
    // process, so a shared path would race.
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    dir_ = (fs::temp_directory_path() /
            (std::string("sefi-fsio-") + info->name())).string();
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string path(const std::string& name) const { return dir_ + "/" + name; }

  std::string dir_;
};

TEST_F(FsioTest, ReadMissingFileIsNullopt) {
  EXPECT_FALSE(read_file(path("missing")).has_value());
}

TEST_F(FsioTest, WriteThenReadRoundTripsBytes) {
  const std::string payload("line one\nline two\0binary\xff tail", 30);
  ASSERT_TRUE(write_file_atomic(path("f"), payload));
  const auto loaded = read_file(path("f"));
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(*loaded, payload);
}

TEST_F(FsioTest, OverwriteReplacesWholePayload) {
  ASSERT_TRUE(write_file_atomic(path("f"), "a much longer first payload"));
  ASSERT_TRUE(write_file_atomic(path("f"), "short"));
  EXPECT_EQ(read_file(path("f")), "short");
}

TEST_F(FsioTest, LeavesNoTempFilesBehind) {
  ASSERT_TRUE(write_file_atomic(path("f"), "payload"));
  std::size_t files = 0;
  for (const auto& entry : fs::directory_iterator(dir_)) {
    ++files;
    EXPECT_EQ(entry.path().filename().string(), "f");
  }
  EXPECT_EQ(files, 1u);
}

TEST_F(FsioTest, FailedWriteLeavesTargetAndDirectoryUntouched) {
  ASSERT_TRUE(write_file_atomic(path("f"), "original"));
  // A path whose parent is a regular file cannot be created: the write
  // must fail without disturbing anything.
  EXPECT_FALSE(write_file_atomic(path("f") + "/child", "x"));
  EXPECT_EQ(read_file(path("f")), "original");
  // And no temp siblings appeared anywhere in the directory.
  for (const auto& entry : fs::directory_iterator(dir_)) {
    EXPECT_EQ(entry.path().filename().string(), "f");
  }
}

TEST_F(FsioTest, ConcurrentWritersLeaveOneCompletePayload) {
  constexpr int kThreads = 8;
  constexpr int kRounds = 50;
  std::vector<std::string> payloads;
  for (int t = 0; t < kThreads; ++t) {
    // Distinct sizes so a torn mixture of two payloads is detectable.
    payloads.push_back(std::string(100 + 37 * t, static_cast<char>('a' + t)));
  }
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([this, &payloads, t] {
      for (int round = 0; round < kRounds; ++round) {
        ASSERT_TRUE(write_file_atomic(path("shared"), payloads[t]));
      }
    });
  }
  for (auto& thread : threads) thread.join();
  const auto final_payload = read_file(path("shared"));
  ASSERT_TRUE(final_payload.has_value());
  EXPECT_NE(std::find(payloads.begin(), payloads.end(), *final_payload),
            payloads.end());
  std::size_t files = 0;
  for ([[maybe_unused]] const auto& entry : fs::directory_iterator(dir_)) {
    ++files;
  }
  EXPECT_EQ(files, 1u);
}

TEST_F(FsioTest, ReadersNeverObserveTornWrites) {
  const std::string a(256, 'a');
  const std::string b(4096, 'b');
  ASSERT_TRUE(write_file_atomic(path("shared"), a));
  std::thread writer([this, &a, &b] {
    for (int i = 0; i < 200; ++i) {
      ASSERT_TRUE(write_file_atomic(path("shared"), i % 2 != 0 ? a : b));
    }
  });
  for (int i = 0; i < 200; ++i) {
    const auto seen = read_file(path("shared"));
    ASSERT_TRUE(seen.has_value());
    EXPECT_TRUE(*seen == a || *seen == b)
        << "torn read of " << seen->size() << " bytes";
  }
  writer.join();
}

}  // namespace
}  // namespace sefi::support
