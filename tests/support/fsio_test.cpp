#include "sefi/support/fsio.hpp"

#include <gtest/gtest.h>

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <filesystem>
#include <thread>
#include <vector>

namespace sefi::support {
namespace {

namespace fs = std::filesystem;

class FsioTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Per-test directory: ctest runs each test in its own parallel
    // process, so a shared path would race.
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    dir_ = (fs::temp_directory_path() /
            (std::string("sefi-fsio-") + info->name())).string();
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string path(const std::string& name) const { return dir_ + "/" + name; }

  std::string dir_;
};

TEST_F(FsioTest, ReadMissingFileIsNullopt) {
  EXPECT_FALSE(read_file(path("missing")).has_value());
}

TEST_F(FsioTest, WriteThenReadRoundTripsBytes) {
  const std::string payload("line one\nline two\0binary\xff tail", 30);
  ASSERT_TRUE(write_file_atomic(path("f"), payload));
  const auto loaded = read_file(path("f"));
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(*loaded, payload);
}

TEST_F(FsioTest, OverwriteReplacesWholePayload) {
  ASSERT_TRUE(write_file_atomic(path("f"), "a much longer first payload"));
  ASSERT_TRUE(write_file_atomic(path("f"), "short"));
  EXPECT_EQ(read_file(path("f")), "short");
}

TEST_F(FsioTest, LeavesNoTempFilesBehind) {
  ASSERT_TRUE(write_file_atomic(path("f"), "payload"));
  std::size_t files = 0;
  for (const auto& entry : fs::directory_iterator(dir_)) {
    ++files;
    EXPECT_EQ(entry.path().filename().string(), "f");
  }
  EXPECT_EQ(files, 1u);
}

TEST_F(FsioTest, FailedWriteLeavesTargetAndDirectoryUntouched) {
  ASSERT_TRUE(write_file_atomic(path("f"), "original"));
  // A path whose parent is a regular file cannot be created: the write
  // must fail without disturbing anything.
  EXPECT_FALSE(write_file_atomic(path("f") + "/child", "x"));
  EXPECT_EQ(read_file(path("f")), "original");
  // And no temp siblings appeared anywhere in the directory.
  for (const auto& entry : fs::directory_iterator(dir_)) {
    EXPECT_EQ(entry.path().filename().string(), "f");
  }
}

TEST_F(FsioTest, ConcurrentWritersLeaveOneCompletePayload) {
  constexpr int kThreads = 8;
  constexpr int kRounds = 50;
  std::vector<std::string> payloads;
  for (int t = 0; t < kThreads; ++t) {
    // Distinct sizes so a torn mixture of two payloads is detectable.
    payloads.push_back(std::string(100 + 37 * t, static_cast<char>('a' + t)));
  }
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([this, &payloads, t] {
      for (int round = 0; round < kRounds; ++round) {
        ASSERT_TRUE(write_file_atomic(path("shared"), payloads[t]));
      }
    });
  }
  for (auto& thread : threads) thread.join();
  const auto final_payload = read_file(path("shared"));
  ASSERT_TRUE(final_payload.has_value());
  EXPECT_NE(std::find(payloads.begin(), payloads.end(), *final_payload),
            payloads.end());
  std::size_t files = 0;
  for ([[maybe_unused]] const auto& entry : fs::directory_iterator(dir_)) {
    ++files;
  }
  EXPECT_EQ(files, 1u);
}

TEST_F(FsioTest, FsyncKnobOverridesAndFallsBack) {
  set_fsync(false);
  EXPECT_FALSE(fsync_enabled());
  ASSERT_TRUE(write_file_atomic(path("f"), "written without fsync"));
  EXPECT_EQ(read_file(path("f")), "written without fsync");
  set_fsync(true);
  EXPECT_TRUE(fsync_enabled());
  ASSERT_TRUE(write_file_atomic(path("f"), "written with fsync"));
  EXPECT_EQ(read_file(path("f")), "written with fsync");
  set_fsync(std::nullopt);  // back to SEFI_FSYNC / the on-default
  EXPECT_TRUE(fsync_enabled());
}

// The crash-durability contract: a writer SIGKILL'd at an arbitrary
// point mid-publish leaves the destination as EXACTLY the old complete
// payload or the new complete payload — never truncated, never a
// mixture, never missing. Distinct payload sizes make any torn state
// detectable by equality alone.
TEST_F(FsioTest, KilledWriterLeavesOldOrNewCompletePayload) {
  const std::string a(512, 'a');
  const std::string b(16 * 1024, 'b');
  ASSERT_TRUE(write_file_atomic(path("f"), a));
  for (int round = 0; round < 6; ++round) {
    const pid_t pid = fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
      // Child: republish forever, alternating payloads, until killed.
      // _exit (not exit) on the impossible failure path: gtest state in
      // a forked child must not run destructors/atexit handlers.
      for (int i = 0;; ++i) {
        if (!write_file_atomic(path("f"), i % 2 != 0 ? a : b)) _exit(7);
      }
    }
    // Kill at a different point in the publish cycle each round (the
    // ladder spans sub-write to many-writes delays).
    ::usleep(200u << round);
    ASSERT_EQ(::kill(pid, SIGKILL), 0);
    int status = 0;
    ASSERT_EQ(::waitpid(pid, &status, 0), pid);
    ASSERT_TRUE(WIFSIGNALED(status)) << "child exited with " << status;
    const auto seen = read_file(path("f"));
    ASSERT_TRUE(seen.has_value()) << "destination vanished";
    EXPECT_TRUE(*seen == a || *seen == b)
        << "torn payload of " << seen->size() << " bytes after kill round "
        << round;
  }
  // Orphaned temps from the kills are allowed (cache gc sweeps them
  // once stale); what matters is that the destination itself is whole.
}

TEST_F(FsioTest, ReadersNeverObserveTornWrites) {
  const std::string a(256, 'a');
  const std::string b(4096, 'b');
  ASSERT_TRUE(write_file_atomic(path("shared"), a));
  std::thread writer([this, &a, &b] {
    for (int i = 0; i < 200; ++i) {
      ASSERT_TRUE(write_file_atomic(path("shared"), i % 2 != 0 ? a : b));
    }
  });
  for (int i = 0; i < 200; ++i) {
    const auto seen = read_file(path("shared"));
    ASSERT_TRUE(seen.has_value());
    EXPECT_TRUE(*seen == a || *seen == b)
        << "torn read of " << seen->size() << " bytes";
  }
  writer.join();
}

}  // namespace
}  // namespace sefi::support
