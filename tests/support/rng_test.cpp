#include "sefi/support/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

namespace sefi::support {
namespace {

TEST(SplitMix64, IsDeterministic) {
  SplitMix64 a(42);
  SplitMix64 b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64, DistinctSeedsDiverge) {
  SplitMix64 a(1);
  SplitMix64 b(2);
  EXPECT_NE(a.next(), b.next());
}

TEST(Xoshiro256, IsDeterministic) {
  Xoshiro256 a(7);
  Xoshiro256 b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Xoshiro256, BelowStaysInRange) {
  Xoshiro256 rng(123);
  for (int i = 0; i < 10'000; ++i) {
    EXPECT_LT(rng.below(17), 17u);
  }
}

TEST(Xoshiro256, BelowOneIsAlwaysZero) {
  Xoshiro256 rng(5);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.below(1), 0u);
}

TEST(Xoshiro256, BelowCoversAllResidues) {
  Xoshiro256 rng(9);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.below(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Xoshiro256, Uniform01InHalfOpenInterval) {
  Xoshiro256 rng(11);
  for (int i = 0; i < 10'000; ++i) {
    const double u = rng.uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Xoshiro256, Uniform01MeanNearHalf) {
  Xoshiro256 rng(13);
  double sum = 0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) sum += rng.uniform01();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Xoshiro256, ForkedStreamsAreIndependentAndDeterministic) {
  Xoshiro256 parent(99);
  Xoshiro256 childA = parent.fork(0);
  Xoshiro256 childB = parent.fork(1);
  Xoshiro256 childA2 = parent.fork(0);
  EXPECT_EQ(childA.next(), childA2.next());
  EXPECT_NE(childA.next(), childB.next());
}

TEST(Xoshiro256, BernoulliExtremes) {
  Xoshiro256 rng(3);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(PoissonSample, ZeroLambdaIsZero) {
  Xoshiro256 rng(1);
  EXPECT_EQ(poisson_sample(rng, 0.0), 0u);
  EXPECT_EQ(poisson_sample(rng, -1.0), 0u);
}

TEST(PoissonSample, SmallLambdaMeanAndVariance) {
  Xoshiro256 rng(21);
  const double lambda = 3.5;
  const int n = 50'000;
  double sum = 0, sum_sq = 0;
  for (int i = 0; i < n; ++i) {
    const double x = static_cast<double>(poisson_sample(rng, lambda));
    sum += x;
    sum_sq += x * x;
  }
  const double mean = sum / n;
  const double variance = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, lambda, 0.05);
  EXPECT_NEAR(variance, lambda, 0.15);
}

TEST(PoissonSample, LargeLambdaMean) {
  Xoshiro256 rng(22);
  const double lambda = 200.0;
  const int n = 20'000;
  double sum = 0;
  for (int i = 0; i < n; ++i) {
    sum += static_cast<double>(poisson_sample(rng, lambda));
  }
  EXPECT_NEAR(sum / n, lambda, 1.0);
}

TEST(ExponentialSample, MeanNearOne) {
  Xoshiro256 rng(31);
  const int n = 100'000;
  double sum = 0;
  for (int i = 0; i < n; ++i) sum += exponential_sample(rng);
  EXPECT_NEAR(sum / n, 1.0, 0.02);
}

TEST(ExponentialSample, AlwaysNonNegative) {
  Xoshiro256 rng(33);
  for (int i = 0; i < 10'000; ++i) EXPECT_GE(exponential_sample(rng), 0.0);
}

TEST(Mix64, AvalanchesSingleBitFlips) {
  // Flipping any one input bit should flip roughly half the output bits
  // (full avalanche); allow a generous band.
  const std::uint64_t base = 0x0123456789abcdefULL;
  for (int bit = 0; bit < 64; ++bit) {
    const std::uint64_t flipped = base ^ (1ULL << bit);
    const int distance =
        __builtin_popcountll(mix64(base) ^ mix64(flipped));
    EXPECT_GT(distance, 10) << "input bit " << bit;
    EXPECT_LT(distance, 54) << "input bit " << bit;
  }
}

TEST(Mix64, MatchesSplitMixStream) {
  // SplitMix64 is "add the Weyl constant, then mix64" by construction.
  SplitMix64 sm(7);
  EXPECT_EQ(sm.next(), mix64(7 + 0x9e3779b97f4a7c15ULL));
}

TEST(DeriveStreamSeed, SequentialStreamsAreDecorrelated) {
  // Generators built from adjacent stream indices must not track each
  // other (the failure mode of xor-with-small-constant derivations).
  const std::uint64_t root = 0xF1F1;
  Xoshiro256 a(derive_stream_seed(root, 0));
  Xoshiro256 b(derive_stream_seed(root, 1));
  int equal_bits = 0;
  for (int i = 0; i < 64; ++i) {
    equal_bits += __builtin_popcountll(~(a.next() ^ b.next())) > 32 ? 1 : 0;
  }
  // Independent streams agree on the bit-majority about half the time.
  EXPECT_GT(equal_bits, 10);
  EXPECT_LT(equal_bits, 54);
}

TEST(DeriveStreamSeed, DistinctInputsDistinctSeeds) {
  EXPECT_NE(derive_stream_seed(1, 0), derive_stream_seed(1, 1));
  EXPECT_NE(derive_stream_seed(1, 0), derive_stream_seed(2, 0));
  // Deterministic.
  EXPECT_EQ(derive_stream_seed(42, 3), derive_stream_seed(42, 3));
}

}  // namespace
}  // namespace sefi::support
