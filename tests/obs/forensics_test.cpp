#include "sefi/obs/forensics.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "sefi/core/lab.hpp"
#include "sefi/fi/campaign.hpp"
#include "sefi/workloads/workload.hpp"

namespace sefi::obs {
namespace {

namespace fs = std::filesystem;

std::string fresh_path(const std::string& name) {
  const std::string path = (fs::temp_directory_path() / name).string();
  fs::remove(path);
  return path;
}

std::vector<std::string> read_lines(const std::string& path) {
  std::vector<std::string> lines;
  std::ifstream in(path);
  for (std::string line; std::getline(in, line);) lines.push_back(line);
  return lines;
}

std::size_t count_substring(const std::vector<std::string>& lines,
                            const std::string& what) {
  std::size_t count = 0;
  for (const std::string& line : lines) {
    if (line.find(what) != std::string::npos) ++count;
  }
  return count;
}

TEST(ForensicsSink, WritesOneJsonObjectPerLine) {
  const std::string path = fresh_path("sefi-forensics-unit.jsonl");
  {
    ForensicsSink sink(path);
    ForensicsSink::Record record;
    record.workload = "Qsort";
    record.component = "L1D";
    record.set = 3;
    record.way = 1;
    record.bit = 17;
    record.field = "data";
    record.flat_bit = 12345;
    record.injection_cycle = 1000;
    record.activated = true;
    record.first_activation_cycle = 1100;
    record.arch_propagated = true;
    record.verdict = "SDC";
    record.latency_to_verdict_cycles = 900;
    ASSERT_TRUE(sink.write(record));
    record.verdict = "Masked";
    record.arch_propagated = false;
    ASSERT_TRUE(sink.write(record));
    EXPECT_EQ(sink.records_written(), 2u);
  }

  const std::vector<std::string> lines = read_lines(path);
  ASSERT_EQ(lines.size(), 2u);
  for (const std::string& line : lines) {
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    EXPECT_NE(line.find("\"workload\":\"Qsort\""), std::string::npos);
    EXPECT_NE(line.find("\"component\":\"L1D\""), std::string::npos);
    EXPECT_NE(line.find("\"field\":\"data\""), std::string::npos);
    EXPECT_NE(line.find("\"injection_cycle\":1000"), std::string::npos);
  }
  EXPECT_NE(lines[0].find("\"verdict\":\"SDC\""), std::string::npos);
  EXPECT_NE(lines[0].find("\"arch_propagated\":true"), std::string::npos);
  EXPECT_NE(lines[1].find("\"verdict\":\"Masked\""), std::string::npos);
  fs::remove(path);
}

// The acceptance invariant of the forensics channel: a campaign's JSONL
// holds exactly one record per attempted injection, and the per-verdict
// line counts equal the campaign's merged ClassCounts.
TEST(ForensicsCampaign, VerdictCountsMatchCampaignStats) {
  const std::string path = fresh_path("sefi-forensics-campaign.jsonl");
  fi::CampaignConfig config;
  config.rig.uarch = core::scaled_uarch();
  config.faults_per_component = 6;
  config.threads = 2;

  ForensicsSink sink(path);
  config.forensics = &sink;
  const fi::WorkloadFiResult result =
      fi::run_fi_campaign(workloads::workload_by_name("SusanC"), config);

  fi::ClassCounts merged;
  for (const fi::ComponentResult& comp : result.components) {
    merged.masked += comp.counts.masked;
    merged.sdc += comp.counts.sdc;
    merged.app_crash += comp.counts.app_crash;
    merged.sys_crash += comp.counts.sys_crash;
    merged.harness_error += comp.counts.harness_error;
  }

  const std::vector<std::string> lines = read_lines(path);
  EXPECT_EQ(sink.records_written(), lines.size());
  EXPECT_EQ(lines.size(), result.stats.injections);
  EXPECT_EQ(count_substring(lines, "\"verdict\":\"Masked\""), merged.masked);
  EXPECT_EQ(count_substring(lines, "\"verdict\":\"SDC\""), merged.sdc);
  EXPECT_EQ(count_substring(lines, "\"verdict\":\"AppCrash\""),
            merged.app_crash);
  EXPECT_EQ(count_substring(lines, "\"verdict\":\"SysCrash\""),
            merged.sys_crash);
  EXPECT_EQ(count_substring(lines, "\"verdict\":\"HarnessError\""),
            merged.harness_error);

  // Activation forensics are internally consistent: an arch-propagated
  // record is always activated, an SDC or crash record always
  // propagated, and a never-activated record carries cycle 0.
  for (const std::string& line : lines) {
    const bool activated =
        line.find("\"activated\":true") != std::string::npos;
    const bool propagated =
        line.find("\"arch_propagated\":true") != std::string::npos;
    const bool masked = line.find("\"verdict\":\"Masked\"") !=
                        std::string::npos;
    if (propagated) EXPECT_TRUE(activated) << line;
    if (activated && !masked) EXPECT_TRUE(propagated) << line;
    if (!activated) {
      EXPECT_NE(line.find("\"first_activation_cycle\":0"), std::string::npos)
          << line;
    }
  }
  fs::remove(path);
}

// Harness errors still leave a record (site only — the injection never
// resolved), keeping the one-line-per-injection invariant intact.
TEST(ForensicsCampaign, HarnessErrorsAreRecorded) {
  const std::string path = fresh_path("sefi-forensics-harness.jsonl");
  fi::CampaignConfig config;
  config.rig.uarch = core::scaled_uarch();
  config.faults_per_component = 6;
  config.threads = 2;
  config.max_task_retries = 1;
  config.task_fault_hook = [](std::size_t index, std::uint64_t) {
    if (index == 7) throw std::runtime_error("permanently broken");
  };

  ForensicsSink sink(path);
  config.forensics = &sink;
  const fi::WorkloadFiResult result =
      fi::run_fi_campaign(workloads::workload_by_name("SusanC"), config);
  EXPECT_EQ(result.stats.harness_errors, 1u);

  const std::vector<std::string> lines = read_lines(path);
  EXPECT_EQ(lines.size(), result.stats.injections);
  EXPECT_EQ(count_substring(lines, "\"verdict\":\"HarnessError\""), 1u);
  fs::remove(path);
}

}  // namespace
}  // namespace sefi::obs
