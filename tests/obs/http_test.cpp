#include "sefi/obs/http.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <optional>
#include <string>
#include <thread>

namespace sefi::obs {
namespace {

// The server is poll-driven by design (the serve coordinator services
// it between worker-pipe events, never from a thread). Tests therefore
// put the *client* on a thread and keep pumping poll_once() on this one
// until the client comes back.
std::optional<HttpResponse> fetch(HttpServer& server, const std::string& path) {
  std::optional<HttpResponse> response;
  std::atomic<bool> done{false};
  std::thread client([&] {
    response = http_get(server.port(), path);
    done.store(true);
  });
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (!done.load() && std::chrono::steady_clock::now() < deadline) {
    server.poll_once(50);
  }
  client.join();
  return response;
}

TEST(HttpServer, ServesMetricsStatusAndHealthz) {
  HttpServer server;
  ASSERT_TRUE(server.start(0));  // ephemeral loopback port
  ASSERT_GT(server.port(), 0);
  server.set_handler([](const HttpRequest& request) {
    HttpResponse response;
    if (request.path == "/metrics") {
      response.content_type = "text/plain; version=0.0.4; charset=utf-8";
      response.body =
          "# HELP t_total help\n# TYPE t_total counter\nt_total 3\n";
    } else if (request.path == "/status") {
      response.content_type = "application/json";
      response.body = "{\"healthy\":true}";
    } else if (request.path == "/healthz") {
      response.body = "ok\n";
    } else {
      response.status = 404;
      response.body = "not found\n";
    }
    return response;
  });

  const auto metrics = fetch(server, "/metrics");
  ASSERT_TRUE(metrics.has_value());
  EXPECT_EQ(metrics->status, 200);
  EXPECT_NE(metrics->content_type.find("text/plain"), std::string::npos);
  // Exposition shape: HELP then TYPE then the sample line.
  EXPECT_NE(metrics->body.find("# HELP t_total"), std::string::npos);
  EXPECT_NE(metrics->body.find("# TYPE t_total counter"), std::string::npos);
  EXPECT_NE(metrics->body.find("t_total 3\n"), std::string::npos);

  const auto status = fetch(server, "/status");
  ASSERT_TRUE(status.has_value());
  EXPECT_EQ(status->status, 200);
  EXPECT_EQ(status->content_type, "application/json");
  EXPECT_EQ(status->body, "{\"healthy\":true}");

  const auto healthz = fetch(server, "/healthz");
  ASSERT_TRUE(healthz.has_value());
  EXPECT_EQ(healthz->status, 200);
  EXPECT_EQ(healthz->body, "ok\n");

  const auto missing = fetch(server, "/nope");
  ASSERT_TRUE(missing.has_value());
  EXPECT_EQ(missing->status, 404);

  server.stop();
  EXPECT_FALSE(server.running());
}

TEST(HttpServer, SequentialRequestsOnOneServer) {
  HttpServer server;
  ASSERT_TRUE(server.start(0));
  std::atomic<int> served{0};
  server.set_handler([&](const HttpRequest&) {
    HttpResponse response;
    response.body = "n=" + std::to_string(served.fetch_add(1));
    return response;
  });
  for (int i = 0; i < 5; ++i) {
    const auto response = fetch(server, "/");
    ASSERT_TRUE(response.has_value()) << i;
    EXPECT_EQ(response->body, "n=" + std::to_string(i));
  }
  EXPECT_EQ(served.load(), 5);
}

TEST(HttpServer, StartFailsOnPortAlreadyBound) {
  HttpServer first;
  ASSERT_TRUE(first.start(0));
  HttpServer second;
  EXPECT_FALSE(second.start(static_cast<std::uint16_t>(first.port())));
}

}  // namespace
}  // namespace sefi::obs
