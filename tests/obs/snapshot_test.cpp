#include "sefi/obs/snapshot.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "sefi/obs/metrics.hpp"

namespace sefi::obs {
namespace {

// A snapshot with every instrument kind, awkward label strings, and
// doubles whose decimal round-trip would lose bits (the codec ships IEEE
// bit patterns, so none may).
MetricsSnapshot sample_snapshot() {
  MetricsSnapshot snap;

  MetricsSnapshot::Family counters;
  counters.name = "snap_test_events_total";
  counters.help = "events with \"quotes\" and\nnewlines";
  counters.kind = InstrumentKind::kCounter;
  counters.series.push_back({"", 41, 0.0, {}});
  counters.series.push_back({"class=\"sdc\",src=\"a b\"", 7, 0.0, {}});
  snap.families.push_back(counters);

  MetricsSnapshot::Family gauges;
  gauges.name = "snap_test_level";
  gauges.help = "a gauge";
  gauges.kind = InstrumentKind::kGauge;
  gauges.series.push_back({"", 0, 0.1 + 0.2, {}});  // not representable
  gauges.series.push_back({"k=\"v\"", 0, -1.5e-300, {}});
  snap.families.push_back(gauges);

  MetricsSnapshot::Family histos;
  histos.name = "snap_test_seconds";
  histos.help = "latency";
  histos.kind = InstrumentKind::kHistogram;
  Histogram::Snapshot h;
  h.bounds = {1.0, 2.5, 10.0};
  h.buckets = {3, 1, 0, 2};  // bounds + implicit +Inf
  h.count = 6;
  h.sum = 123.456789012345;
  histos.series.push_back({"path=\"/metrics\"", 0, 0.0, h});
  snap.families.push_back(histos);

  snap.normalize();
  return snap;
}

TEST(SnapshotCodec, RoundTripIsBitIdentical) {
  const MetricsSnapshot original = sample_snapshot();
  const std::string encoded = encode_snapshot(original);

  MetricsSnapshot decoded;
  ASSERT_TRUE(decode_snapshot(encoded, decoded));

  // Bit-identity, not approximate equality: re-encoding the decoded
  // snapshot must reproduce the exact bytes (doubles travel as IEEE bit
  // patterns, and normalize() makes the family/series order canonical).
  EXPECT_EQ(encode_snapshot(decoded), encoded);
  // And the Prometheus exposition agrees too.
  EXPECT_EQ(expose_text(decoded), expose_text(original));
}

TEST(SnapshotCodec, EmptySnapshotRoundTrips) {
  MetricsSnapshot empty;
  const std::string encoded = encode_snapshot(empty);
  MetricsSnapshot decoded;
  ASSERT_TRUE(decode_snapshot(encoded, decoded));
  EXPECT_TRUE(decoded.families.empty());
}

TEST(SnapshotCodec, TruncationAndCorruptionAreRejected) {
  const std::string encoded = encode_snapshot(sample_snapshot());
  MetricsSnapshot scratch;

  // Every proper prefix is torn — the seal footer must refuse it.
  for (std::size_t len = 0; len < encoded.size(); len += 7) {
    EXPECT_FALSE(decode_snapshot(encoded.substr(0, len), scratch)) << len;
  }
  // A single flipped byte anywhere breaks the checksum.
  for (std::size_t i = 0; i < encoded.size(); i += 11) {
    std::string corrupt = encoded;
    corrupt[i] ^= 0x20;
    EXPECT_FALSE(decode_snapshot(corrupt, scratch)) << i;
  }
  EXPECT_FALSE(decode_snapshot("", scratch));
  EXPECT_FALSE(decode_snapshot("not a snapshot at all", scratch));
}

// --- merge semantics -------------------------------------------------------

MetricsSnapshot counter_snap(const std::string& name, std::uint64_t value,
                             const std::string& labels = "") {
  MetricsSnapshot snap;
  MetricsSnapshot::Family family;
  family.name = name;
  family.help = "h";
  family.kind = InstrumentKind::kCounter;
  family.series.push_back({labels, value, 0.0, {}});
  snap.families.push_back(family);
  snap.normalize();
  return snap;
}

MetricsSnapshot histo_snap(const std::string& name,
                           std::vector<double> bounds,
                           std::vector<std::uint64_t> buckets,
                           std::uint64_t count, double sum) {
  MetricsSnapshot snap;
  MetricsSnapshot::Family family;
  family.name = name;
  family.help = "h";
  family.kind = InstrumentKind::kHistogram;
  Histogram::Snapshot h;
  h.bounds = std::move(bounds);
  h.buckets = std::move(buckets);
  h.count = count;
  h.sum = sum;
  family.series.push_back({"", 0, 0.0, h});
  snap.families.push_back(family);
  snap.normalize();
  return snap;
}

std::uint64_t counter_value(const MetricsSnapshot& snap,
                            const std::string& name,
                            const std::string& labels = "") {
  for (const auto& family : snap.families) {
    if (family.name != name) continue;
    for (const auto& series : family.series) {
      if (series.labels == labels) return series.counter;
    }
  }
  return 0;
}

TEST(SnapshotMerge, CountersSumAndHistogramsBucketAdd) {
  MetricsSnapshot into = counter_snap("merge_total", 10);
  merge_snapshot(into, counter_snap("merge_total", 32));
  EXPECT_EQ(counter_value(into, "merge_total"), 42u);

  MetricsSnapshot h = histo_snap("merge_seconds", {1.0, 2.0}, {1, 0, 2}, 3, 9.0);
  merge_snapshot(h, histo_snap("merge_seconds", {1.0, 2.0}, {0, 4, 1}, 5, 6.5));
  ASSERT_EQ(h.families.size(), 1u);
  const Histogram::Snapshot& merged = h.families[0].series[0].histogram;
  EXPECT_EQ(merged.buckets, (std::vector<std::uint64_t>{1, 4, 3}));
  EXPECT_EQ(merged.count, 8u);
  EXPECT_DOUBLE_EQ(merged.sum, 15.5);
}

TEST(SnapshotMerge, MismatchedHistogramBoundsAreDroppedNotFabricated) {
  MetricsSnapshot h = histo_snap("merge_mismatch", {1.0, 2.0}, {1, 0, 2}, 3, 9.0);
  merge_snapshot(h, histo_snap("merge_mismatch", {5.0}, {1, 1}, 2, 7.0));
  const Histogram::Snapshot& kept = h.families[0].series[0].histogram;
  EXPECT_EQ(kept.count, 3u);  // the incompatible source was refused
  EXPECT_DOUBLE_EQ(kept.sum, 9.0);
}

TEST(SnapshotMerge, GaugesStandPerSource) {
  MetricsSnapshot into;
  MetricsSnapshot worker;
  MetricsSnapshot::Family family;
  family.name = "merge_gauge";
  family.help = "h";
  family.kind = InstrumentKind::kGauge;
  family.series.push_back({"", 0, 3.5, {}});
  worker.families.push_back(family);
  worker.normalize();

  merge_snapshot(into, worker, "101");
  merge_snapshot(into, worker, "202");
  ASSERT_EQ(into.families.size(), 1u);
  ASSERT_EQ(into.families[0].series.size(), 2u);
  EXPECT_EQ(into.families[0].series[0].labels, "src=\"101\"");
  EXPECT_EQ(into.families[0].series[1].labels, "src=\"202\"");
  EXPECT_DOUBLE_EQ(into.families[0].series[0].gauge, 3.5);
}

TEST(SnapshotMerge, MergeIsAssociativeAndCommutative) {
  const MetricsSnapshot a = counter_snap("law_total", 1, "w=\"a\"");
  const MetricsSnapshot b = counter_snap("law_total", 2);
  const MetricsSnapshot c =
      histo_snap("law_seconds", {1.0}, {2, 1}, 3, 4.5);

  const auto merge3 = [](const MetricsSnapshot& x, const MetricsSnapshot& y,
                         const MetricsSnapshot& z, bool left_first) {
    if (left_first) {  // (x + y) + z
      MetricsSnapshot xy = x;
      merge_snapshot(xy, y);
      merge_snapshot(xy, z);
      return encode_snapshot(xy);
    }
    MetricsSnapshot yz = y;  // x + (y + z)
    merge_snapshot(yz, z);
    MetricsSnapshot out = x;
    merge_snapshot(out, yz);
    return encode_snapshot(out);
  };

  // Associativity: grouping does not matter. The canonical normalize()
  // inside merge makes byte-equality of the encoding the proof.
  EXPECT_EQ(merge3(a, b, c, true), merge3(a, b, c, false));
  // Commutativity: order does not matter either.
  EXPECT_EQ(merge3(a, b, c, true), merge3(c, a, b, true));
  EXPECT_EQ(merge3(a, b, c, true), merge3(b, c, a, true));
}

TEST(SnapshotMerge, KindMismatchedFamilyIsSkipped) {
  MetricsSnapshot into = counter_snap("kind_clash", 5);
  MetricsSnapshot gauge_side;
  MetricsSnapshot::Family family;
  family.name = "kind_clash";
  family.help = "h";
  family.kind = InstrumentKind::kGauge;
  family.series.push_back({"", 0, 9.0, {}});
  gauge_side.families.push_back(family);
  gauge_side.normalize();

  merge_snapshot(into, gauge_side, "7");
  ASSERT_EQ(into.families.size(), 1u);
  EXPECT_EQ(into.families[0].kind, InstrumentKind::kCounter);
  EXPECT_EQ(counter_value(into, "kind_clash"), 5u);
}

// The scrape-equivalence contract: splitting one process's work across
// N registries and merging the snapshots must expose the same counters
// and histograms as doing all the work in one registry.
TEST(SnapshotMerge, MergedSplitWorkIsScrapeEquivalentToSingleProcess) {
  const bool was_enabled = metrics_enabled();
  Registry::instance().set_enabled(true);

  Counter& c = Registry::instance().counter("split_equiv_total", "help");
  Histogram& h = Registry::instance().histogram("split_equiv_seconds", "help",
                                                {1.0, 2.0});
  c.reset();
  h.reset();

  // "Single process": all 10 + 4 observations in one registry.
  c.add(10);
  for (int i = 0; i < 4; ++i) h.observe(i + 0.5);
  const MetricsSnapshot single = Registry::instance().snapshot();

  // "Split": the same work as three disjoint slices, each done in a
  // freshly reset registry and merged with no source (counters and
  // histograms are source-agnostic, so the fold must telescope).
  struct Slice {
    std::uint64_t adds;
    std::vector<double> observations;
  };
  const std::vector<Slice> slices = {
      {3, {0.5, 1.5}}, {5, {2.5, 3.5}}, {2, {}}};
  MetricsSnapshot merged;
  for (const Slice& slice : slices) {
    Registry::instance().reset();
    c.add(slice.adds);
    for (const double value : slice.observations) h.observe(value);
    merge_snapshot(merged, Registry::instance().snapshot());
  }

  EXPECT_EQ(counter_value(merged, "split_equiv_total"), 10u);
  EXPECT_EQ(counter_value(single, "split_equiv_total"), 10u);
  for (const auto& family : merged.families) {
    if (family.name != "split_equiv_seconds") continue;
    EXPECT_EQ(family.series[0].histogram.count, 4u);
  }

  Registry::instance().reset();
  Registry::instance().set_enabled(was_enabled);
}

}  // namespace
}  // namespace sefi::obs
