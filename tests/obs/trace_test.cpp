#include "sefi/obs/trace.hpp"

#include <gtest/gtest.h>

#include <cctype>
#include <cstddef>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

namespace sefi::obs {
namespace {

// Minimal recursive-descent JSON validator — enough to prove the trace
// the tracer emits would survive a real parser (CI double-checks with
// `python3 -m json.tool`), without pulling a JSON library into the
// test binary.
class JsonChecker {
 public:
  explicit JsonChecker(const std::string& text) : text_(text) {}

  bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == text_.size();
  }

 private:
  bool value() {
    if (pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{':
        return object();
      case '[':
        return array();
      case '"':
        return string();
      case 't':
        return literal("true");
      case 'f':
        return literal("false");
      case 'n':
        return literal("null");
      default:
        return number();
    }
  }

  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') return ++pos_, true;
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == '}') return ++pos_, true;
      return false;
    }
  }

  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') return ++pos_, true;
    while (true) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == ']') return ++pos_, true;
      return false;
    }
  }

  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      if (text_[pos_] == '\\') ++pos_;
      ++pos_;
    }
    if (pos_ >= text_.size()) return false;
    ++pos_;
    return true;
  }

  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }

  bool literal(const char* word) {
    const std::string expected(word);
    if (text_.compare(pos_, expected.size(), expected) != 0) return false;
    pos_ += expected.size();
    return true;
  }

  char peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

std::size_t count_substring(const std::string& text, const std::string& what) {
  std::size_t count = 0;
  for (std::size_t pos = text.find(what); pos != std::string::npos;
       pos = text.find(what, pos + what.size())) {
    ++count;
  }
  return count;
}

// The tracer is process-global; each test enables it with a scratch
// path, and restores the disabled-and-empty state on exit so campaign
// tests elsewhere in the binary stay untraced.
class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Tracer::instance().reset();
    path_ = (std::filesystem::temp_directory_path() / "sefi-trace-test.json")
                .string();
    std::filesystem::remove(path_);
    Tracer::instance().enable(path_);
  }
  void TearDown() override {
    Tracer::instance().disable();
    Tracer::instance().reset();
    std::filesystem::remove(path_);
  }

  std::string path_;
};

TEST_F(TraceTest, SpansEmitBalancedValidJson) {
  {
    const Span outer("outer", "test");
    {
      const Span inner("inner", "test");
    }
    Tracer::instance().instant("marker", "test");
  }
  EXPECT_EQ(Tracer::instance().event_count(), 5u);

  const std::string json = Tracer::instance().json();
  JsonChecker checker(json);
  EXPECT_TRUE(checker.valid()) << json;
  EXPECT_EQ(json.rfind("{\"traceEvents\":[", 0), 0u);
  EXPECT_EQ(count_substring(json, "\"ph\":\"B\""), 2u);
  EXPECT_EQ(count_substring(json, "\"ph\":\"E\""), 2u);
  EXPECT_EQ(count_substring(json, "\"ph\":\"i\""), 1u);
  EXPECT_EQ(count_substring(json, "\"name\":\"inner\""), 2u);
}

TEST_F(TraceTest, EmptyBufferIsStillValidJson) {
  const std::string json = Tracer::instance().json();
  JsonChecker checker(json);
  EXPECT_TRUE(checker.valid()) << json;
}

TEST_F(TraceTest, DisabledSpansCostNoEvents) {
  Tracer::instance().disable();
  {
    const Span span("ignored", "test");
  }
  EXPECT_EQ(Tracer::instance().event_count(), 0u);
}

TEST_F(TraceTest, FlushWritesTheConfiguredFile) {
  {
    const Span span("flushed", "test");
  }
  ASSERT_TRUE(Tracer::instance().flush());
  std::ifstream in(path_);
  ASSERT_TRUE(in.good());
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string on_disk = buffer.str();
  EXPECT_EQ(on_disk, Tracer::instance().json());
  JsonChecker checker(on_disk);
  EXPECT_TRUE(checker.valid());
}

TEST_F(TraceTest, ConcurrentSpansStayBalancedPerThread) {
  constexpr int kThreads = 8;
  constexpr int kSpans = 200;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([] {
      for (int i = 0; i < kSpans; ++i) {
        const Span span("worker_span", "test");
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  const std::string json = Tracer::instance().json();
  JsonChecker checker(json);
  EXPECT_TRUE(checker.valid());
  EXPECT_EQ(count_substring(json, "\"ph\":\"B\""),
            static_cast<std::size_t>(kThreads) * kSpans);
  EXPECT_EQ(count_substring(json, "\"ph\":\"E\""),
            static_cast<std::size_t>(kThreads) * kSpans);
}

}  // namespace
}  // namespace sefi::obs
