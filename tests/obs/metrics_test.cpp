#include "sefi/obs/metrics.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace sefi::obs {
namespace {

// The registry is process-global (and shared with every campaign the
// other tests in this binary run), so tests register their own
// uniquely-named instruments and restore the enabled flag on exit.

class MetricsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    was_enabled_ = metrics_enabled();
    Registry::instance().set_enabled(true);
  }
  void TearDown() override { Registry::instance().set_enabled(was_enabled_); }

 private:
  bool was_enabled_ = true;
};

TEST_F(MetricsTest, CounterAddsAndResets) {
  Counter& c = Registry::instance().counter("test_counter_basic", "help");
  c.reset();
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST_F(MetricsTest, DisabledMutationsAreDropped) {
  Counter& c = Registry::instance().counter("test_counter_disabled", "help");
  Gauge& g = Registry::instance().gauge("test_gauge_disabled", "help");
  c.reset();
  g.reset();
  Registry::instance().set_enabled(false);
  c.add(7);
  g.set(3.5);
  EXPECT_EQ(c.value(), 0u);
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
  Registry::instance().set_enabled(true);
  c.add(7);
  g.set(3.5);
  EXPECT_EQ(c.value(), 7u);
  EXPECT_DOUBLE_EQ(g.value(), 3.5);
}

TEST_F(MetricsTest, SameNameAndLabelsReturnSameInstrument) {
  Counter& a = Registry::instance().counter("test_counter_identity", "help",
                                            "k=\"1\"");
  Counter& b = Registry::instance().counter("test_counter_identity", "help",
                                            "k=\"1\"");
  Counter& other = Registry::instance().counter("test_counter_identity",
                                                "help", "k=\"2\"");
  EXPECT_EQ(&a, &b);
  EXPECT_NE(&a, &other);
}

TEST_F(MetricsTest, HistogramBucketBoundariesAreInclusiveUpperBounds) {
  Histogram& h = Registry::instance().histogram("test_histo_bounds", "help",
                                                {10.0, 20.0, 30.0});
  h.reset();
  // Prometheus buckets are `le` (less-or-equal): a value exactly on a
  // bound lands in that bound's bucket, one past it in the next.
  h.observe(0.0);    // -> le=10
  h.observe(10.0);   // -> le=10 (boundary inclusive)
  h.observe(10.01);  // -> le=20
  h.observe(20.0);   // -> le=20
  h.observe(30.0);   // -> le=30
  h.observe(30.5);   // -> +Inf
  h.observe(1e12);   // -> +Inf

  const Histogram::Snapshot snap = h.snapshot();
  ASSERT_EQ(snap.bounds.size(), 3u);
  ASSERT_EQ(snap.buckets.size(), 4u);  // bounds + implicit +Inf
  EXPECT_EQ(snap.buckets[0], 2u);
  EXPECT_EQ(snap.buckets[1], 2u);
  EXPECT_EQ(snap.buckets[2], 1u);
  EXPECT_EQ(snap.buckets[3], 2u);
  EXPECT_EQ(snap.count, 7u);
  EXPECT_DOUBLE_EQ(snap.sum, 0.0 + 10.0 + 10.01 + 20.0 + 30.0 + 30.5 + 1e12);
}

TEST_F(MetricsTest, HistogramBoundsAreSortedAndDeduplicated) {
  Histogram& h = Registry::instance().histogram("test_histo_sort", "help",
                                                {30.0, 10.0, 20.0, 10.0});
  const std::vector<double> expected = {10.0, 20.0, 30.0};
  EXPECT_EQ(h.bounds(), expected);
}

TEST_F(MetricsTest, ShardMergeSurvivesAnEightThreadHammer) {
  Counter& c = Registry::instance().counter("test_counter_hammer", "help");
  Histogram& h = Registry::instance().histogram("test_histo_hammer", "help",
                                                {1.0, 2.0, 3.0});
  c.reset();
  h.reset();

  constexpr int kThreads = 8;
  constexpr int kIterations = 100'000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c, &h, t] {
      for (int i = 0; i < kIterations; ++i) {
        c.add();
        h.observe(t % 4 + 0.5);  // 0.5..3.5: one value per bucket incl +Inf
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads) * kIterations);
  const Histogram::Snapshot snap = h.snapshot();
  EXPECT_EQ(snap.count, static_cast<std::uint64_t>(kThreads) * kIterations);
  // Two of the eight threads produced each value 0.5, 1.5, 2.5, 3.5.
  ASSERT_EQ(snap.buckets.size(), 4u);
  for (const std::uint64_t bucket : snap.buckets) {
    EXPECT_EQ(bucket, 2u * kIterations);
  }
  // Doubles are exact for these halves, so the CAS-merged sum is too.
  EXPECT_DOUBLE_EQ(snap.sum, 2.0 * kIterations * (0.5 + 1.5 + 2.5 + 3.5));
}

TEST_F(MetricsTest, ExposeTextIsPrometheusShaped) {
  Registry& registry = Registry::instance();
  Counter& c = registry.counter("test_expose_total", "things counted");
  Counter& labelled = registry.counter("test_expose_labelled_total",
                                       "labelled things", "class=\"sdc\"");
  Histogram& h =
      registry.histogram("test_expose_seconds", "latency", {1.0, 2.0});
  c.reset();
  labelled.reset();
  h.reset();
  c.add(3);
  labelled.add(2);
  h.observe(0.5);
  h.observe(1.5);
  h.observe(9.0);

  const std::string text = registry.expose_text();
  EXPECT_NE(text.find("# HELP test_expose_total things counted\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE test_expose_total counter\n"),
            std::string::npos);
  EXPECT_NE(text.find("test_expose_total 3\n"), std::string::npos);
  EXPECT_NE(text.find("test_expose_labelled_total{class=\"sdc\"} 2\n"),
            std::string::npos);
  // Histogram buckets are cumulative and end with +Inf == _count.
  EXPECT_NE(text.find("test_expose_seconds_bucket{le=\"1\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("test_expose_seconds_bucket{le=\"2\"} 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("test_expose_seconds_bucket{le=\"+Inf\"} 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("test_expose_seconds_sum 11\n"), std::string::npos);
  EXPECT_NE(text.find("test_expose_seconds_count 3\n"), std::string::npos);
}

}  // namespace
}  // namespace sefi::obs
