// Test helper: forces the SEFI_FASTPATH knob for one scope.
//
// The Cpu reads the knob at construction through the first-read-wins
// support::env cache, so campaign-level tests that compare tiers must
// both set the process environment and refresh that cache — and put the
// previous value back on exit, or they would leak tier state into
// whichever test ctest schedules next in the same process.
#pragma once

#include <cstdlib>
#include <string>

#include "sefi/support/env.hpp"

namespace sefi::testing {

class ScopedFastpath {
 public:
  explicit ScopedFastpath(const char* tier) {
    const char* old = std::getenv("SEFI_FASTPATH");
    had_old_ = old != nullptr;
    if (had_old_) old_ = old;
    ::setenv("SEFI_FASTPATH", tier, 1);
    support::env::refresh();
  }

  ScopedFastpath(const ScopedFastpath&) = delete;
  ScopedFastpath& operator=(const ScopedFastpath&) = delete;

  ~ScopedFastpath() {
    if (had_old_) {
      ::setenv("SEFI_FASTPATH", old_.c_str(), 1);
    } else {
      ::unsetenv("SEFI_FASTPATH");
    }
    support::env::refresh();
  }

 private:
  bool had_old_ = false;
  std::string old_;
};

}  // namespace sefi::testing
