#include "sefi/exec/procpool.hpp"

#include <gtest/gtest.h>

#include <fcntl.h>
#include <signal.h>
#include <unistd.h>

#include <filesystem>
#include <stdexcept>
#include <string>
#include <vector>

namespace sefi::exec {
namespace {

namespace fs = std::filesystem;

// run_shard executes in forked CHILD processes: side effects must go
// through the filesystem, not parent memory. The parent-side hooks
// (on_assign/on_done/on_reclaim) are the only in-memory observers.
class ProcPoolTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    dir_ = (fs::temp_directory_path() /
            (std::string("sefi-procpool-") + info->name())).string();
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string path(const std::string& name) const { return dir_ + "/" + name; }

  /// Appends one byte to `name` (attempt counter usable from children).
  void touch_append(const std::string& name) const {
    const int fd =
        ::open(path(name).c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
    ASSERT_GE(fd, 0);
    ASSERT_EQ(::write(fd, "x", 1), 1);
    ::close(fd);
  }

  std::uintmax_t size_of(const std::string& name) const {
    std::error_code ec;
    const std::uintmax_t size = fs::file_size(path(name), ec);
    return ec ? 0 : size;
  }

  std::string dir_;
};

TEST_F(ProcPoolTest, EveryShardRunsExactlyOnce) {
  ProcPoolConfig config;
  config.workers = 4;
  std::vector<int> done_hook(16, 0);
  config.on_done = [&](std::size_t shard, std::size_t) { ++done_hook[shard]; };
  const ProcPoolReport report = run_process_pool(
      config, 16,
      [&](std::size_t shard) { touch_append("shard-" + std::to_string(shard)); });
  EXPECT_TRUE(report.completed);
  EXPECT_EQ(report.shards_done, 16u);
  EXPECT_EQ(report.shards_failed, 0u);
  EXPECT_EQ(report.worker_deaths, 0u);
  for (std::size_t shard = 0; shard < 16; ++shard) {
    EXPECT_EQ(size_of("shard-" + std::to_string(shard)), 1u) << shard;
    EXPECT_EQ(done_hook[shard], 1) << shard;
  }
}

TEST_F(ProcPoolTest, SingleWorkerDrainsTheWholeQueue) {
  ProcPoolConfig config;
  config.workers = 1;
  const ProcPoolReport report = run_process_pool(config, 5, [&](std::size_t shard) {
    touch_append("shard-" + std::to_string(shard));
  });
  EXPECT_TRUE(report.completed);
  EXPECT_EQ(report.shards_done, 5u);
}

TEST_F(ProcPoolTest, ThrowingShardIsRetriedThenBookedFailed) {
  ProcPoolConfig config;
  config.workers = 2;
  config.max_shard_attempts = 3;
  const ProcPoolReport report = run_process_pool(config, 4, [&](std::size_t shard) {
    if (shard == 1) {
      touch_append("attempts");
      throw std::runtime_error("poisoned shard");
    }
    touch_append("shard-" + std::to_string(shard));
  });
  EXPECT_FALSE(report.completed);
  EXPECT_EQ(report.shards_failed, 1u);
  EXPECT_EQ(report.shards_done, 3u);
  // A throwing callback reports "e" over the pipe — the worker survives
  // and the shard is re-attempted exactly max_shard_attempts times.
  EXPECT_EQ(size_of("attempts"), config.max_shard_attempts);
  EXPECT_FALSE(report.first_error.empty());
}

TEST_F(ProcPoolTest, KilledWorkerShardIsReclaimedAndFinished) {
  ProcPoolConfig config;
  config.workers = 3;
  std::uint64_t reclaim_hook = 0;
  config.on_reclaim = [&](std::size_t, std::size_t) { ++reclaim_hook; };
  const ProcPoolReport report = run_process_pool(config, 9, [&](std::size_t shard) {
    // Exactly one worker (the O_EXCL winner) dies holding its shard.
    const int fd = ::open(path("killed").c_str(),
                          O_WRONLY | O_CREAT | O_EXCL | O_CLOEXEC, 0644);
    if (fd >= 0) {
      ::close(fd);
      ::kill(::getpid(), SIGKILL);
    }
    touch_append("shard-" + std::to_string(shard));
  });
  EXPECT_TRUE(report.completed);
  EXPECT_EQ(report.shards_done, 9u);
  EXPECT_GE(report.worker_deaths, 1u);
  EXPECT_GE(report.leases_reclaimed, 1u);
  EXPECT_GE(report.workers_respawned, 1u);
  EXPECT_EQ(reclaim_hook, report.leases_reclaimed);
  for (std::size_t shard = 0; shard < 9; ++shard) {
    EXPECT_GE(size_of("shard-" + std::to_string(shard)), 1u) << shard;
  }
}

TEST_F(ProcPoolTest, ExpiredLeaseIsKilledAndReassigned) {
  ProcPoolConfig config;
  config.workers = 2;
  config.lease_ms = 200;
  const ProcPoolReport report = run_process_pool(config, 4, [&](std::size_t shard) {
    // The first claimant of shard 0 wedges forever; the lease must
    // expire, the parent SIGKILLs it, and a respawned worker (or the
    // surviving one) refinishes the shard.
    if (shard == 0) {
      const int fd = ::open(path("wedged").c_str(),
                            O_WRONLY | O_CREAT | O_EXCL | O_CLOEXEC, 0644);
      if (fd >= 0) {
        ::close(fd);
        for (;;) ::pause();
      }
    }
    touch_append("shard-" + std::to_string(shard));
  });
  EXPECT_TRUE(report.completed);
  EXPECT_EQ(report.shards_done, 4u);
  EXPECT_GE(report.lease_expiries, 1u);
  EXPECT_GE(report.leases_reclaimed, 1u);
  EXPECT_EQ(size_of("shard-0"), 1u);
}

TEST_F(ProcPoolTest, WorkerSnapshotsShipAfterEveryShardAndAtExit) {
  ProcPoolConfig config;
  config.workers = 2;
  // child_init runs in the child: prove it via a filesystem side effect.
  config.child_init = [this] { touch_append("init"); };
  // The payload is produced in the child; ship something the parent can
  // attribute (the pid travels alongside, so content = shard marker).
  config.worker_snapshot = [] { return std::string("snap"); };
  std::vector<std::pair<std::uint64_t, std::string>> shipped;
  config.on_snapshot = [&](std::size_t, std::uint64_t pid,
                           const std::string& payload) {
    shipped.emplace_back(pid, payload);
  };
  const ProcPoolReport report = run_process_pool(config, 6, [&](std::size_t shard) {
    touch_append("shard-" + std::to_string(shard));
  });
  EXPECT_TRUE(report.completed);
  EXPECT_EQ(report.shards_done, 6u);
  // child_init ran once per forked worker.
  EXPECT_EQ(size_of("init"), config.workers);
  // One snapshot per finished shard plus one exit flush per worker.
  EXPECT_EQ(shipped.size(), 6u + config.workers);
  for (const auto& [pid, payload] : shipped) {
    EXPECT_GT(pid, 0u);
    EXPECT_EQ(payload, "snap");
  }
}

TEST_F(ProcPoolTest, EmptyWorkerSnapshotIsNotShipped) {
  ProcPoolConfig config;
  config.workers = 2;
  config.worker_snapshot = [] { return std::string(); };
  std::size_t shipped = 0;
  config.on_snapshot = [&](std::size_t, std::uint64_t, const std::string&) {
    ++shipped;
  };
  const ProcPoolReport report =
      run_process_pool(config, 4, [&](std::size_t) {});
  EXPECT_TRUE(report.completed);
  EXPECT_EQ(shipped, 0u);
}

TEST_F(ProcPoolTest, OnTickFiresWhileWorkersRun) {
  ProcPoolConfig config;
  config.workers = 2;
  config.tick_ms = 10;
  std::uint64_t ticks = 0;
  config.on_tick = [&] { ++ticks; };
  const ProcPoolReport report = run_process_pool(config, 2, [](std::size_t) {
    ::usleep(100'000);  // 100 ms: several tick windows per shard
  });
  EXPECT_TRUE(report.completed);
  EXPECT_GE(ticks, 3u);
}

TEST_F(ProcPoolTest, SnapshotFromDyingWorkerDoesNotWedgeThePool) {
  ProcPoolConfig config;
  config.workers = 2;
  config.worker_snapshot = [] { return std::string("last words"); };
  std::vector<std::string> payloads;
  config.on_snapshot = [&](std::size_t, std::uint64_t,
                           const std::string& payload) {
    payloads.push_back(payload);
  };
  const ProcPoolReport report = run_process_pool(config, 4, [&](std::size_t shard) {
    const int fd = ::open(path("killed").c_str(),
                          O_WRONLY | O_CREAT | O_EXCL | O_CLOEXEC, 0644);
    if (fd >= 0) {
      ::close(fd);
      ::kill(::getpid(), SIGKILL);  // no exit snapshot from this one
    }
    touch_append("shard-" + std::to_string(shard));
  });
  EXPECT_TRUE(report.completed);
  EXPECT_EQ(report.shards_done, 4u);
  EXPECT_GE(report.worker_deaths, 1u);
  // Every payload that did arrive is intact; the SIGKILL'd worker's
  // missing flush is simply absent, never a torn line.
  for (const std::string& payload : payloads) {
    EXPECT_EQ(payload, "last words");
  }
}

}  // namespace
}  // namespace sefi::exec
