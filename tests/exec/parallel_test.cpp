#include "sefi/exec/parallel.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace sefi::exec {
namespace {

TEST(ResolveThreads, ZeroMeansHardware) {
  EXPECT_EQ(resolve_threads(0, 1000), hardware_threads());
  EXPECT_GE(hardware_threads(), 1u);
}

TEST(ResolveThreads, ClampsToTaskCount) {
  EXPECT_EQ(resolve_threads(16, 3), 3u);
  EXPECT_EQ(resolve_threads(2, 3), 2u);
  // Zero tasks still resolves to a valid worker count.
  EXPECT_GE(resolve_threads(0, 0), 1u);
}

TEST(ForEachTask, RunsEveryTaskExactlyOnce) {
  constexpr std::size_t kTasks = 1000;
  std::vector<std::atomic<int>> hits(kTasks);
  for_each_task(4, kTasks, [&](std::size_t, std::size_t index) {
    hits[index].fetch_add(1);
  });
  for (std::size_t i = 0; i < kTasks; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "task " << i;
  }
}

TEST(ForEachTask, WorkerIdsAreDense) {
  constexpr std::size_t kThreads = 4;
  std::vector<std::atomic<int>> seen(kThreads);
  for_each_task(kThreads, 200, [&](std::size_t worker, std::size_t) {
    ASSERT_LT(worker, kThreads);
    seen[worker].fetch_add(1);
  });
  int total = 0;
  for (auto& count : seen) total += count.load();
  EXPECT_EQ(total, 200);
}

TEST(ForEachTask, SingleThreadRunsInlineInOrder) {
  // threads == 1 must preserve sequential order (the serial path).
  std::vector<std::size_t> order;
  for_each_task(1, 50, [&](std::size_t worker, std::size_t index) {
    EXPECT_EQ(worker, 0u);
    order.push_back(index);
  });
  std::vector<std::size_t> expected(50);
  std::iota(expected.begin(), expected.end(), 0);
  EXPECT_EQ(order, expected);
}

TEST(ForEachTask, IndexedResultsAreThreadCountInvariant) {
  // The determinism contract: write results only into your own slot and
  // the merged output cannot depend on scheduling.
  auto compute = [](std::size_t threads) {
    std::vector<std::uint64_t> out(500);
    for_each_task(threads, out.size(), [&](std::size_t, std::size_t index) {
      out[index] = index * index + 17;
    });
    return out;
  };
  EXPECT_EQ(compute(1), compute(4));
}

TEST(ForEachTask, PropagatesFirstException) {
  EXPECT_THROW(
      for_each_task(4, 100,
                    [&](std::size_t, std::size_t index) {
                      if (index == 42) throw std::runtime_error("boom");
                    }),
      std::runtime_error);
}

TEST(ForEachTask, ZeroTasksIsANoop) {
  bool ran = false;
  for_each_task(4, 0, [&](std::size_t, std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(DrainReport, FailuresDoNotAbandonTheRemainingTasks) {
  // The report-form contract: every index is attempted even when some
  // throw — a flaky task costs itself, never the rest of the campaign.
  constexpr std::size_t kTasks = 200;
  std::vector<std::atomic<int>> hits(kTasks);
  const DrainReport report = for_each_task(
      4, kTasks,
      [&](std::size_t, std::size_t index) {
        hits[index].fetch_add(1);
        if (index % 10 == 3) throw std::runtime_error("task failed");
      },
      nullptr);
  for (std::size_t i = 0; i < kTasks; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "task " << i;
  }
  EXPECT_EQ(report.completed, kTasks - 20);
  EXPECT_EQ(report.failed, 20u);
  EXPECT_EQ(report.completed + report.failed, kTasks);
  EXPECT_FALSE(report.cancelled);
  ASSERT_TRUE(report.first_error);
  EXPECT_LT(report.first_failed_index, kTasks);
  EXPECT_EQ(report.first_failed_index % 10, 3u);
  EXPECT_THROW(std::rethrow_exception(report.first_error),
               std::runtime_error);
}

TEST(DrainReport, SerialFirstErrorIsTheEarliestIndex) {
  const DrainReport report = for_each_task(
      1, 50,
      [&](std::size_t, std::size_t index) {
        if (index == 7 || index == 30) throw std::runtime_error("boom");
      },
      nullptr);
  EXPECT_EQ(report.failed, 2u);
  EXPECT_EQ(report.first_failed_index, 7u);
}

TEST(DrainReport, PreCancelledTokenRunsNothing) {
  CancellationToken token;
  token.request_stop();
  bool ran = false;
  const DrainReport report = for_each_task(
      4, 100, [&](std::size_t, std::size_t) { ran = true; }, &token);
  EXPECT_FALSE(ran);
  EXPECT_TRUE(report.cancelled);
  EXPECT_EQ(report.completed, 0u);
  EXPECT_EQ(report.failed, 0u);
}

TEST(DrainReport, MidDrainCancelStopsPullingNewTasks) {
  CancellationToken token;
  std::atomic<int> ran{0};
  const DrainReport report = for_each_task(
      1, 100,
      [&](std::size_t, std::size_t index) {
        ran.fetch_add(1);
        if (index == 9) token.request_stop();
      },
      &token);
  EXPECT_TRUE(report.cancelled);
  // The in-flight task finishes (cooperative drain), nothing after it.
  EXPECT_EQ(ran.load(), 10);
  EXPECT_EQ(report.completed, 10u);
}

TEST(DrainReport, CancelFlagIsFalseOnFullDrain) {
  CancellationToken token;
  const DrainReport report =
      for_each_task(4, 40, [](std::size_t, std::size_t) {}, &token);
  EXPECT_FALSE(report.cancelled);
  EXPECT_EQ(report.completed, 40u);
}

TEST(ForEachTask, ThrowingFormAbandonsAfterFirstFailure) {
  // The legacy overload stops dispatching once a task throws; with one
  // worker the tasks after the failing index must never run.
  std::vector<int> hits(50, 0);
  EXPECT_THROW(for_each_task(1, hits.size(),
                             [&](std::size_t, std::size_t index) {
                               ++hits[index];
                               if (index == 5) {
                                 throw std::runtime_error("stop");
                               }
                             }),
               std::runtime_error);
  EXPECT_EQ(hits[5], 1);
  for (std::size_t i = 6; i < hits.size(); ++i) EXPECT_EQ(hits[i], 0) << i;
}

}  // namespace
}  // namespace sefi::exec
