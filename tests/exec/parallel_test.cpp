#include "sefi/exec/parallel.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace sefi::exec {
namespace {

TEST(ResolveThreads, ZeroMeansHardware) {
  EXPECT_EQ(resolve_threads(0, 1000), hardware_threads());
  EXPECT_GE(hardware_threads(), 1u);
}

TEST(ResolveThreads, ClampsToTaskCount) {
  EXPECT_EQ(resolve_threads(16, 3), 3u);
  EXPECT_EQ(resolve_threads(2, 3), 2u);
  // Zero tasks still resolves to a valid worker count.
  EXPECT_GE(resolve_threads(0, 0), 1u);
}

TEST(ForEachTask, RunsEveryTaskExactlyOnce) {
  constexpr std::size_t kTasks = 1000;
  std::vector<std::atomic<int>> hits(kTasks);
  for_each_task(4, kTasks, [&](std::size_t, std::size_t index) {
    hits[index].fetch_add(1);
  });
  for (std::size_t i = 0; i < kTasks; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "task " << i;
  }
}

TEST(ForEachTask, WorkerIdsAreDense) {
  constexpr std::size_t kThreads = 4;
  std::vector<std::atomic<int>> seen(kThreads);
  for_each_task(kThreads, 200, [&](std::size_t worker, std::size_t) {
    ASSERT_LT(worker, kThreads);
    seen[worker].fetch_add(1);
  });
  int total = 0;
  for (auto& count : seen) total += count.load();
  EXPECT_EQ(total, 200);
}

TEST(ForEachTask, SingleThreadRunsInlineInOrder) {
  // threads == 1 must preserve sequential order (the serial path).
  std::vector<std::size_t> order;
  for_each_task(1, 50, [&](std::size_t worker, std::size_t index) {
    EXPECT_EQ(worker, 0u);
    order.push_back(index);
  });
  std::vector<std::size_t> expected(50);
  std::iota(expected.begin(), expected.end(), 0);
  EXPECT_EQ(order, expected);
}

TEST(ForEachTask, IndexedResultsAreThreadCountInvariant) {
  // The determinism contract: write results only into your own slot and
  // the merged output cannot depend on scheduling.
  auto compute = [](std::size_t threads) {
    std::vector<std::uint64_t> out(500);
    for_each_task(threads, out.size(), [&](std::size_t, std::size_t index) {
      out[index] = index * index + 17;
    });
    return out;
  };
  EXPECT_EQ(compute(1), compute(4));
}

TEST(ForEachTask, PropagatesFirstException) {
  EXPECT_THROW(
      for_each_task(4, 100,
                    [&](std::size_t, std::size_t index) {
                      if (index == 42) throw std::runtime_error("boom");
                    }),
      std::runtime_error);
}

TEST(ForEachTask, ZeroTasksIsANoop) {
  bool ran = false;
  for_each_task(4, 0, [&](std::size_t, std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

}  // namespace
}  // namespace sefi::exec
