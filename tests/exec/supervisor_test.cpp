#include "sefi/exec/supervisor.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <thread>
#include <vector>

namespace sefi::exec {
namespace {

SupervisorConfig serial_config() {
  SupervisorConfig config;
  config.threads = 1;
  return config;
}

TEST(TaskGuard, DefaultGuardIsInert) {
  const TaskGuard guard;
  EXPECT_NO_THROW(guard.check());
  EXPECT_FALSE(guard.cancel_requested());
  EXPECT_FALSE(guard.deadline_expired());
}

TEST(TaskGuard, ThrowsOnCancelledToken) {
  CancellationToken token;
  const TaskGuard guard(&token, 0);
  EXPECT_NO_THROW(guard.check());
  token.request_stop();
  EXPECT_TRUE(guard.cancel_requested());
  EXPECT_THROW(guard.check(), TaskCancelled);
}

TEST(TaskGuard, ThrowsOnceDeadlinePasses) {
  const TaskGuard guard(nullptr, 1);  // 1 ms budget
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_TRUE(guard.deadline_expired());
  EXPECT_THROW(guard.check(), TaskDeadlineExceeded);
}

TEST(Supervisor, CleanTasksAllComplete) {
  std::vector<int> hits(10, 0);
  const SupervisorReport report = run_supervised(
      serial_config(), hits.size(), nullptr,
      [&](std::size_t worker, std::size_t index, std::uint64_t attempt,
          const TaskGuard&) {
        EXPECT_EQ(worker, 0u);
        EXPECT_EQ(attempt, 0u);
        ++hits[index];
      },
      nullptr);
  for (int h : hits) EXPECT_EQ(h, 1);
  EXPECT_EQ(report.completed, 10u);
  EXPECT_EQ(report.retries, 0u);
  EXPECT_EQ(report.harness_errors, 0u);
  EXPECT_FALSE(report.cancelled);
  ASSERT_EQ(report.states.size(), 10u);
  for (const TaskState state : report.states) {
    EXPECT_EQ(state, TaskState::kDone);
  }
}

TEST(Supervisor, TransientFailureRetriesSameIndex) {
  // Index 3 fails once; the retry must re-run index 3 (not skip ahead)
  // and the task must end kDone.
  std::vector<int> attempts(6, 0);
  const SupervisorReport report = run_supervised(
      serial_config(), attempts.size(), nullptr,
      [&](std::size_t, std::size_t index, std::uint64_t attempt,
          const TaskGuard&) {
        ++attempts[index];
        if (index == 3 && attempt == 0) throw std::runtime_error("flaky");
      },
      nullptr);
  EXPECT_EQ(attempts[3], 2);
  for (std::size_t i = 0; i < attempts.size(); ++i) {
    if (i != 3) EXPECT_EQ(attempts[i], 1) << i;
  }
  EXPECT_EQ(report.completed, 6u);
  EXPECT_EQ(report.retries, 1u);
  EXPECT_EQ(report.harness_errors, 0u);
  EXPECT_EQ(report.states[3], TaskState::kDone);
  EXPECT_NE(report.first_error.find("flaky"), std::string::npos);
}

TEST(Supervisor, ExhaustedRetriesBookHarnessErrorAndContinue) {
  SupervisorConfig config = serial_config();
  config.max_task_retries = 2;
  std::vector<int> attempts(5, 0);
  const SupervisorReport report = run_supervised(
      config, attempts.size(), nullptr,
      [&](std::size_t, std::size_t index, std::uint64_t, const TaskGuard&) {
        ++attempts[index];
        if (index == 1) throw std::runtime_error("permanent");
      },
      nullptr);
  // 1 initial + 2 retries, then give up; the campaign continues.
  EXPECT_EQ(attempts[1], 3);
  EXPECT_EQ(report.harness_errors, 1u);
  EXPECT_EQ(report.retries, 2u);
  EXPECT_EQ(report.completed, 4u);
  EXPECT_EQ(report.states[1], TaskState::kHarnessError);
  EXPECT_EQ(report.states[4], TaskState::kDone);  // later tasks still ran
  EXPECT_FALSE(report.cancelled);
}

TEST(Supervisor, ZeroRetriesFailsFast) {
  SupervisorConfig config = serial_config();
  config.max_task_retries = 0;
  int attempts = 0;
  const SupervisorReport report = run_supervised(
      config, 1, nullptr,
      [&](std::size_t, std::size_t, std::uint64_t, const TaskGuard&) {
        ++attempts;
        throw std::runtime_error("boom");
      },
      nullptr);
  EXPECT_EQ(attempts, 1);
  EXPECT_EQ(report.retries, 0u);
  EXPECT_EQ(report.harness_errors, 1u);
}

TEST(Supervisor, RecoverRunsAfterEveryFailedAttempt) {
  SupervisorConfig config = serial_config();
  config.max_task_retries = 2;
  int recoveries = 0;
  run_supervised(
      config, 3, nullptr,
      [&](std::size_t, std::size_t index, std::uint64_t, const TaskGuard&) {
        if (index == 2) throw std::runtime_error("always");
      },
      [&](std::size_t worker) {
        EXPECT_EQ(worker, 0u);
        ++recoveries;
      });
  // Three failed attempts on index 2, each followed by a rebuild.
  EXPECT_EQ(recoveries, 3);
}

TEST(Supervisor, ThrowingRecoverDoesNotEscape) {
  SupervisorConfig config = serial_config();
  config.max_task_retries = 1;
  SupervisorReport report;
  EXPECT_NO_THROW(report = run_supervised(
                      config, 2, nullptr,
                      [&](std::size_t, std::size_t index, std::uint64_t,
                          const TaskGuard&) {
                        if (index == 0) throw std::runtime_error("task");
                      },
                      [&](std::size_t) {
                        throw std::runtime_error("recover also broken");
                      }));
  EXPECT_EQ(report.harness_errors, 1u);
  EXPECT_EQ(report.completed, 1u);
}

TEST(Supervisor, AlreadyDoneSkipsWithoutInvokingTask) {
  std::vector<int> hits(8, 0);
  const SupervisorReport report = run_supervised(
      serial_config(), hits.size(),
      [](std::size_t index) { return index % 2 == 0; },
      [&](std::size_t, std::size_t index, std::uint64_t, const TaskGuard&) {
        ++hits[index];
      },
      nullptr);
  EXPECT_EQ(report.skipped, 4u);
  EXPECT_EQ(report.completed, 4u);
  for (std::size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i], i % 2 == 0 ? 0 : 1) << i;
    EXPECT_EQ(report.states[i],
              i % 2 == 0 ? TaskState::kSkipped : TaskState::kDone);
  }
}

TEST(Supervisor, ThrowingAlreadyDoneProbeFallsThroughToExecution) {
  // A probe throw (e.g. a corrupt journal index mid-lookup) must treat
  // the task as not-done and execute it — never poison the whole drain
  // or mark the task skipped on the strength of a broken probe.
  std::vector<int> hits(6, 0);
  const SupervisorReport report = run_supervised(
      serial_config(), hits.size(),
      [](std::size_t index) -> bool {
        if (index == 2) throw std::runtime_error("probe corrupt");
        return index == 4;  // a genuinely-done neighbor still skips
      },
      [&](std::size_t, std::size_t index, std::uint64_t, const TaskGuard&) {
        ++hits[index];
      },
      nullptr);
  EXPECT_EQ(hits[2], 1);  // probed-throw task ran anyway
  EXPECT_EQ(hits[4], 0);  // genuinely-done task still skipped
  EXPECT_EQ(report.states[2], TaskState::kDone);
  EXPECT_EQ(report.states[4], TaskState::kSkipped);
  EXPECT_EQ(report.skipped, 1u);
  EXPECT_EQ(report.completed, 5u);
  EXPECT_EQ(report.harness_errors, 0u);  // a probe throw is not a task failure
  EXPECT_NE(report.first_error.find("probe"), std::string::npos);
}

TEST(Supervisor, CancellationLeavesRemainingTasksPending) {
  CancellationToken token;
  SupervisorConfig config = serial_config();
  config.cancel = &token;
  std::vector<int> hits(10, 0);
  const SupervisorReport report = run_supervised(
      config, hits.size(), nullptr,
      [&](std::size_t, std::size_t index, std::uint64_t, const TaskGuard&) {
        ++hits[index];
        if (index == 3) token.request_stop();
      },
      nullptr);
  EXPECT_TRUE(report.cancelled);
  // The in-flight task (index 3) finished; nothing after it started.
  EXPECT_EQ(report.completed, 4u);
  for (std::size_t i = 4; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i], 0) << i;
    EXPECT_EQ(report.states[i], TaskState::kPending);
  }
  EXPECT_EQ(report.states[3], TaskState::kDone);
}

TEST(Supervisor, TaskCancelledMidAttemptLeavesTaskPending) {
  // A guard poll that throws TaskCancelled is a drain, not a failure:
  // the task books neither a retry nor a harness error.
  CancellationToken token;
  SupervisorConfig config = serial_config();
  config.cancel = &token;
  const SupervisorReport report = run_supervised(
      config, 5, nullptr,
      [&](std::size_t, std::size_t index, std::uint64_t,
          const TaskGuard& guard) {
        if (index == 2) {
          token.request_stop();
          guard.check();  // throws TaskCancelled mid-attempt
          FAIL() << "guard did not throw";
        }
      },
      nullptr);
  EXPECT_TRUE(report.cancelled);
  EXPECT_EQ(report.completed, 2u);
  EXPECT_EQ(report.retries, 0u);
  EXPECT_EQ(report.harness_errors, 0u);
  EXPECT_EQ(report.cancelled_tasks, 1u);
  EXPECT_EQ(report.states[2], TaskState::kPending);
}

TEST(Supervisor, WatchdogDeadlineBooksHitsThenHarnessError) {
  SupervisorConfig config = serial_config();
  config.max_task_retries = 1;
  config.task_deadline_ms = 1;
  const SupervisorReport report = run_supervised(
      config, 2, nullptr,
      [&](std::size_t, std::size_t index, std::uint64_t,
          const TaskGuard& guard) {
        if (index != 1) return;
        // A stuck task: loops forever, but polls its guard like the
        // campaign drivers do between simulation slices.
        for (;;) {
          std::this_thread::sleep_for(std::chrono::milliseconds(5));
          guard.check();
        }
      },
      nullptr);
  EXPECT_EQ(report.watchdog_hits, 2u);  // initial attempt + one retry
  EXPECT_EQ(report.retries, 1u);
  EXPECT_EQ(report.harness_errors, 1u);
  EXPECT_EQ(report.states[1], TaskState::kHarnessError);
  EXPECT_EQ(report.states[0], TaskState::kDone);
  EXPECT_FALSE(report.cancelled);
}

TEST(Supervisor, DeadlineIsPerAttemptNotPerCampaign) {
  // Ten tasks each sleeping ~2 ms under a 50 ms per-attempt budget: the
  // campaign takes >20 ms total but no attempt exceeds its own deadline.
  SupervisorConfig config = serial_config();
  config.task_deadline_ms = 50;
  const SupervisorReport report = run_supervised(
      config, 10, nullptr,
      [&](std::size_t, std::size_t, std::uint64_t, const TaskGuard& guard) {
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
        guard.check();
      },
      nullptr);
  EXPECT_EQ(report.completed, 10u);
  EXPECT_EQ(report.watchdog_hits, 0u);
}

TEST(Supervisor, ParallelDrainMatchesSerialStates) {
  // The terminal-state vector is part of the determinism contract: a
  // permanent failure at fixed indices must produce identical states for
  // any thread count.
  const auto run = [](std::size_t threads) {
    SupervisorConfig config;
    config.threads = threads;
    config.max_task_retries = 1;
    return run_supervised(
        config, 64, [](std::size_t index) { return index % 7 == 0; },
        [&](std::size_t, std::size_t index, std::uint64_t, const TaskGuard&) {
          if (index % 13 == 5) throw std::runtime_error("deterministic");
        },
        nullptr);
  };
  const SupervisorReport serial = run(1);
  const SupervisorReport threaded = run(4);
  EXPECT_EQ(serial.states, threaded.states);
  EXPECT_EQ(serial.completed, threaded.completed);
  EXPECT_EQ(serial.skipped, threaded.skipped);
  EXPECT_EQ(serial.harness_errors, threaded.harness_errors);
  EXPECT_EQ(serial.retries, threaded.retries);
}

TEST(Supervisor, WorkerIdsStayDenseUnderRetries) {
  SupervisorConfig config;
  config.threads = 3;
  config.max_task_retries = 2;
  std::atomic<std::size_t> max_worker{0};
  run_supervised(
      config, 50, nullptr,
      [&](std::size_t worker, std::size_t index, std::uint64_t attempt,
          const TaskGuard&) {
        std::size_t seen = max_worker.load();
        while (worker > seen && !max_worker.compare_exchange_weak(seen, worker)) {
        }
        if (index % 11 == 0 && attempt == 0) throw std::runtime_error("once");
      },
      [](std::size_t worker) { ASSERT_LT(worker, 3u); });
  EXPECT_LT(max_worker.load(), 3u);
}

TEST(SigintToken, IsProcessWideAndResettable) {
  CancellationToken& token = sigint_token();
  token.reset();
  EXPECT_FALSE(token.stop_requested());
  token.request_stop();
  EXPECT_TRUE(sigint_token().stop_requested());
  EXPECT_EQ(&token, &sigint_token());
  token.reset();
  EXPECT_FALSE(sigint_token().stop_requested());
}

}  // namespace
}  // namespace sefi::exec
