#include "sefi/beam/session.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <optional>
#include <stdexcept>

#include "../support_fastpath_scope.hpp"
#include "sefi/core/lab.hpp"
#include "sefi/support/error.hpp"

namespace sefi::beam {
namespace {

BeamConfig small_session(std::uint64_t runs = 120) {
  BeamConfig config;
  config.uarch = core::scaled_uarch();
  config.runs = runs;
  return config;
}

const workloads::Workload& susan() {
  return workloads::workload_by_name("SusanC");
}

TEST(PlatformModel, ZynqDefaultHasResources) {
  const PlatformModel platform = PlatformModel::zynq_default();
  EXPECT_GE(platform.resources.size(), 2u);
  EXPECT_GT(platform.total_bits(), 0.0);
  for (const auto& resource : platform.resources) {
    EXPECT_LE(resource.p_sys_crash + resource.p_app_crash, 1.0);
  }
}

TEST(PlatformModel, NoneIsEmpty) {
  EXPECT_DOUBLE_EQ(PlatformModel::none().total_bits(), 0.0);
}

TEST(BeamResult, FitArithmetic) {
  BeamResult result;
  result.sdc = 13;
  result.fluence_per_cm2 = 1e12;
  // sigma = 13e-12 cm^2 -> FIT = 13e-12 * 13 * 1e9 = 0.169.
  EXPECT_NEAR(result.fit_sdc(), 0.169, 1e-6);
  EXPECT_DOUBLE_EQ(result.fit_app_crash(), 0.0);
  EXPECT_DOUBLE_EQ(result.fit_total(), result.fit_sdc());
}

TEST(BeamResult, IntervalBracketsPointEstimate) {
  BeamResult result;
  result.sdc = 20;
  result.fluence_per_cm2 = 1e12;
  const stats::Interval ci = result.fit_interval(result.sdc);
  EXPECT_LT(ci.lower, result.fit_sdc());
  EXPECT_GT(ci.upper, result.fit_sdc());
}

TEST(Session, CompletesRequestedRuns) {
  const BeamResult result = run_beam_session(susan(), small_session());
  EXPECT_EQ(result.workload, "SusanC");
  EXPECT_EQ(result.runs, 120u);
  EXPECT_GT(result.strikes, 20u);  // ~1.2 per run on average
  EXPECT_GT(result.exposure_seconds, 0.0);
  EXPECT_GT(result.fluence_per_cm2, 0.0);
  EXPECT_GT(result.accel_flux_per_cm2_s, 0.0);
  EXPECT_LE(result.sdc + result.app_crash + result.sys_crash, result.runs);
}

TEST(Session, IsDeterministic) {
  const BeamResult a = run_beam_session(susan(), small_session());
  const BeamResult b = run_beam_session(susan(), small_session());
  EXPECT_EQ(a.sdc, b.sdc);
  EXPECT_EQ(a.app_crash, b.app_crash);
  EXPECT_EQ(a.sys_crash, b.sys_crash);
  EXPECT_EQ(a.strikes, b.strikes);
  EXPECT_DOUBLE_EQ(a.fluence_per_cm2, b.fluence_per_cm2);
}

TEST(Session, DeltaRestoreKnobDoesNotChangeOutcomes) {
  // Beam sessions never restore snapshots — the powered board carries
  // its corruption forward — so the delta-restore knob must be inert.
  // This guards against a future change accidentally routing session
  // reboots through snapshot restore (which would wipe RAM corruption
  // and change the System-Crash physics vs the paper's setup).
  BeamConfig with = small_session(60);
  with.delta_restore = true;
  BeamConfig without = small_session(60);
  without.delta_restore = false;
  const BeamResult a = run_beam_session(susan(), with);
  const BeamResult b = run_beam_session(susan(), without);
  EXPECT_EQ(a.sdc, b.sdc);
  EXPECT_EQ(a.app_crash, b.app_crash);
  EXPECT_EQ(a.sys_crash, b.sys_crash);
  EXPECT_EQ(a.strikes, b.strikes);
  EXPECT_EQ(a.reboots, b.reboots);
  EXPECT_DOUBLE_EQ(a.fluence_per_cm2, b.fluence_per_cm2);
}

TEST(Session, FastpathTierDoesNotChangeOutcomes) {
  // The uop fast path must be invisible to beam physics: a session keeps
  // one machine powered across runs with corruption accumulating in the
  // arrays, which is exactly the state the stamp guards must track.
  std::optional<BeamResult> baseline;
  std::optional<BeamResult> block;
  {
    sefi::testing::ScopedFastpath off("off");
    baseline = run_beam_session(susan(), small_session(60));
  }
  {
    sefi::testing::ScopedFastpath fast("block");
    block = run_beam_session(susan(), small_session(60));
  }
  EXPECT_EQ(baseline->sdc, block->sdc);
  EXPECT_EQ(baseline->app_crash, block->app_crash);
  EXPECT_EQ(baseline->sys_crash, block->sys_crash);
  EXPECT_EQ(baseline->strikes, block->strikes);
  EXPECT_EQ(baseline->reboots, block->reboots);
  EXPECT_EQ(baseline->runs, block->runs);
  EXPECT_DOUBLE_EQ(baseline->fluence_per_cm2, block->fluence_per_cm2);
}

TEST(Session, SeedChangesTheSession) {
  BeamConfig other = small_session();
  other.seed ^= 0x1234;
  const BeamResult a = run_beam_session(susan(), small_session());
  const BeamResult b = run_beam_session(susan(), other);
  EXPECT_NE(a.strikes, b.strikes);
}

TEST(Session, ObservesFailures) {
  // A session with strikes must observe *some* failures: an all-correct
  // session would mean strikes aren't reaching live state.
  BeamConfig config = small_session(250);
  const BeamResult result = run_beam_session(susan(), config);
  EXPECT_GT(result.sdc + result.app_crash + result.sys_crash, 0u);
}

TEST(Session, PlatformResourcesRaiseSystemCrashRate) {
  // The paper's core System-Crash claim: un-modeled platform structures
  // inflate the beam's SysCrash FIT. Removing them must lower it.
  BeamConfig with_platform = small_session(250);
  BeamConfig without_platform = small_session(250);
  without_platform.platform = PlatformModel::none();
  const BeamResult with = run_beam_session(susan(), with_platform);
  const BeamResult without = run_beam_session(susan(), without_platform);
  EXPECT_GT(with.sys_crash, without.sys_crash);
}

TEST(Sweep, ParallelSessionsMatchSerialRuns) {
  // run_beam_sessions fans independent sessions over workers; every
  // session must be bit-identical to running it alone, in input order.
  BeamConfig config = small_session(60);
  const std::vector<const workloads::Workload*> suite = {
      &workloads::workload_by_name("SusanC"),
      &workloads::workload_by_name("Qsort"),
      &workloads::workload_by_name("CRC32"),
  };
  config.threads = 3;
  const std::vector<BeamResult> parallel = run_beam_sessions(suite, config);
  ASSERT_EQ(parallel.size(), suite.size());
  for (std::size_t i = 0; i < suite.size(); ++i) {
    const BeamResult solo = run_beam_session(*suite[i], config);
    EXPECT_EQ(parallel[i].workload, suite[i]->info().name);
    EXPECT_EQ(parallel[i].sdc, solo.sdc);
    EXPECT_EQ(parallel[i].app_crash, solo.app_crash);
    EXPECT_EQ(parallel[i].sys_crash, solo.sys_crash);
    EXPECT_EQ(parallel[i].strikes, solo.strikes);
    EXPECT_DOUBLE_EQ(parallel[i].fluence_per_cm2, solo.fluence_per_cm2);
  }
}

TEST(Session, RejectsBadConfig) {
  BeamConfig config = small_session();
  config.runs = 0;
  EXPECT_THROW(run_beam_session(susan(), config), support::SefiError);
  config = small_session();
  config.strikes_per_run = 0;
  EXPECT_THROW(run_beam_session(susan(), config), support::SefiError);
}

TEST(Calibration, FitRawIsPositiveAndPlausible) {
  BeamConfig config = small_session(400);
  const double fit_raw = measure_fit_raw_per_bit(config);
  EXPECT_GT(fit_raw, 0.0);
  // Same order of magnitude as the paper's 2.76e-5 FIT/bit.
  EXPECT_GT(fit_raw, 1e-6);
  EXPECT_LT(fit_raw, 1e-3);
}

TEST(Calibration, BufferBitsMatchWorkload) {
  EXPECT_EQ(l1_pattern_bits(),
            static_cast<std::uint64_t>(workloads::l1_pattern_buffer_bytes()) *
                8);
}

TEST(Session, NaturalYearsScalesWithFluence) {
  BeamResult result;
  result.fluence_per_cm2 = 13.0 * 24 * 365.25;  // one natural year
  EXPECT_NEAR(result.natural_years(), 1.0, 1e-9);
}

// --- Sweep supervisor: fault isolation, retries, journaled resume ---

std::vector<const workloads::Workload*> small_suite() {
  return {
      &workloads::workload_by_name("SusanC"),
      &workloads::workload_by_name("Qsort"),
      &workloads::workload_by_name("CRC32"),
  };
}

void expect_same_results(const std::vector<BeamResult>& a,
                         const std::vector<BeamResult>& b,
                         const char* label) {
  ASSERT_EQ(a.size(), b.size()) << label;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].workload, b[i].workload) << label << " session " << i;
    EXPECT_EQ(a[i].sdc, b[i].sdc) << label << " session " << i;
    EXPECT_EQ(a[i].app_crash, b[i].app_crash) << label << " session " << i;
    EXPECT_EQ(a[i].sys_crash, b[i].sys_crash) << label << " session " << i;
    EXPECT_EQ(a[i].strikes, b[i].strikes) << label << " session " << i;
    EXPECT_EQ(a[i].reboots, b[i].reboots) << label << " session " << i;
    EXPECT_DOUBLE_EQ(a[i].fluence_per_cm2, b[i].fluence_per_cm2)
        << label << " session " << i;
  }
}

TEST(SweepSupervisor, TransientSessionFaultRetriesToTheSameResult) {
  BeamConfig config = small_session(50);
  config.threads = 1;
  const std::vector<BeamResult> clean =
      run_beam_sessions(small_suite(), config);

  config.session_fault_hook = [](std::size_t index, std::uint64_t attempt) {
    if (index == 1 && attempt == 0) {
      throw std::runtime_error("simulated transient harness fault");
    }
  };
  BeamSweepStats stats;
  const std::vector<BeamResult> retried =
      run_beam_sessions(small_suite(), config, &stats);
  expect_same_results(clean, retried, "transient-retry");
  EXPECT_EQ(stats.retries, 1u);
  EXPECT_EQ(stats.harness_errors, 0u);
  EXPECT_EQ(stats.sessions_run, 3u);
  EXPECT_FALSE(stats.cancelled);
}

TEST(SweepSupervisor, PermanentSessionFaultDoesNotAbortTheSweep) {
  BeamConfig config = small_session(50);
  config.threads = 1;
  config.max_task_retries = 1;
  config.session_fault_hook = [](std::size_t index, std::uint64_t) {
    if (index == 1) throw std::runtime_error("board on fire");
  };
  BeamSweepStats stats;
  const std::vector<BeamResult> results =
      run_beam_sessions(small_suite(), config, &stats);
  ASSERT_EQ(results.size(), 3u);
  ASSERT_EQ(stats.states.size(), 3u);
  EXPECT_EQ(stats.states[0], exec::TaskState::kDone);
  EXPECT_EQ(stats.states[1], exec::TaskState::kHarnessError);
  EXPECT_EQ(stats.states[2], exec::TaskState::kDone);
  EXPECT_EQ(stats.harness_errors, 1u);
  EXPECT_EQ(stats.retries, 1u);
  // The failed slot stays default-constructed; its neighbors are real.
  EXPECT_EQ(results[1].runs, 0u);
  EXPECT_GT(results[0].runs, 0u);
  EXPECT_GT(results[2].runs, 0u);
  // The completed sessions match a clean sweep's sessions exactly.
  BeamConfig clean_config = small_session(50);
  clean_config.threads = 1;
  const std::vector<BeamResult> clean =
      run_beam_sessions(small_suite(), clean_config);
  EXPECT_EQ(results[0].sdc, clean[0].sdc);
  EXPECT_EQ(results[2].sdc, clean[2].sdc);
  EXPECT_EQ(results[0].strikes, clean[0].strikes);
  EXPECT_EQ(results[2].strikes, clean[2].strikes);
}

TEST(SweepSupervisor, JournalResumeIsBitIdentical) {
  namespace fs = std::filesystem;
  const std::string dir =
      (fs::temp_directory_path() / "sefi-beam-resume").string();
  fs::remove_all(dir);
  fs::create_directories(dir);
  const std::string path = dir + "/sweep.journal";
  const std::string header = "beam sweep-test SusanC Qsort CRC32";

  BeamConfig config = small_session(50);
  config.threads = 1;
  const std::vector<BeamResult> clean =
      run_beam_sessions(small_suite(), config);

  // Interrupted sweep: the token trips before session 1 runs, so only
  // session 0 journals.
  exec::CancellationToken token;
  {
    support::TaskJournal journal(path, header);
    BeamConfig interrupted = config;
    interrupted.cancel = &token;
    interrupted.journal = &journal;
    interrupted.session_fault_hook = [&token](std::size_t index,
                                              std::uint64_t) {
      if (index == 1) token.request_stop();
    };
    BeamSweepStats stats;
    const std::vector<BeamResult> partial =
        run_beam_sessions(small_suite(), interrupted, &stats);
    EXPECT_TRUE(stats.cancelled);
    EXPECT_EQ(stats.sessions_run, 1u);
    ASSERT_EQ(stats.states.size(), 3u);
    EXPECT_EQ(stats.states[0], exec::TaskState::kDone);
    EXPECT_EQ(stats.states[2], exec::TaskState::kPending);
    // The finished session is already correct, the pending one is empty.
    EXPECT_EQ(partial[0].sdc, clean[0].sdc);
    EXPECT_EQ(partial[2].runs, 0u);
  }

  // Resume: a fresh journal object (the "new process") replays session 0
  // byte-exactly and runs only the remaining two.
  support::TaskJournal journal(path, header);
  EXPECT_EQ(journal.replayed(), 1u);
  BeamConfig resumed = config;
  resumed.journal = &journal;
  BeamSweepStats stats;
  const std::vector<BeamResult> results =
      run_beam_sessions(small_suite(), resumed, &stats);
  expect_same_results(clean, results, "journal-resume");
  EXPECT_EQ(stats.journal_replayed, 1u);
  EXPECT_EQ(stats.sessions_run, 2u);
  EXPECT_FALSE(stats.cancelled);
  fs::remove_all(dir);
}

TEST(SweepSupervisor, StaleJournalHeaderForcesAFullRerun) {
  namespace fs = std::filesystem;
  const std::string dir =
      (fs::temp_directory_path() / "sefi-beam-skew").string();
  fs::remove_all(dir);
  fs::create_directories(dir);
  const std::string path = dir + "/sweep.journal";
  {
    support::TaskJournal stale(path, "beam some-other-sweep");
    stale.record(0, "garbage payload");
  }
  support::TaskJournal journal(path, "beam current-sweep");
  EXPECT_EQ(journal.replayed(), 0u);
  BeamConfig config = small_session(50);
  config.threads = 1;
  config.journal = &journal;
  BeamSweepStats stats;
  const std::vector<BeamResult> results =
      run_beam_sessions(small_suite(), config, &stats);
  EXPECT_EQ(stats.journal_replayed, 0u);
  EXPECT_EQ(stats.sessions_run, 3u);
  BeamConfig clean_config = small_session(50);
  clean_config.threads = 1;
  expect_same_results(run_beam_sessions(small_suite(), clean_config), results,
                      "header-skew");
  fs::remove_all(dir);
}

}  // namespace
}  // namespace sefi::beam
