// Quickstart: boot the simulated ARM-class system, run a benchmark on
// top of the mini-kernel, inspect the hardware counters, then inject a
// single fault and watch it propagate.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>

#include "sefi/fi/campaign.hpp"
#include "sefi/kernel/kernel.hpp"
#include "sefi/microarch/detailed.hpp"
#include "sefi/workloads/workload.hpp"

int main() {
  using namespace sefi;

  // 1. Pick a workload from the MiBench-style suite.
  const workloads::Workload& workload =
      workloads::workload_by_name("RijndaelE");
  std::printf("workload: %s (%s)\n", workload.info().name.c_str(),
              workload.info().characteristics.c_str());

  // 2. Build a detailed (cycle-accounting, bit-accurate) machine, load
  //    the kernel and the application, and run to completion.
  sim::Machine machine = microarch::make_detailed_machine();
  kernel::install_system(machine, kernel::build_kernel(),
                         workload.build(workloads::kDefaultInputSeed),
                         workloads::kWorkloadStackTop);
  machine.boot();
  const sim::RunEvent event = machine.run(/*max_cycles=*/100'000'000);

  std::printf("run finished: event=%d exit=%u console=\"%s\"\n",
              static_cast<int>(event.kind), event.payload,
              machine.console().c_str());
  const sim::PerfCounters& counters = machine.counters();
  std::printf(
      "cycles=%llu instr=%llu | L1D acc=%llu miss=%llu | L1I miss=%llu | "
      "dTLB miss=%llu | branch miss=%llu/%llu\n",
      static_cast<unsigned long long>(machine.cpu().cycles()),
      static_cast<unsigned long long>(machine.cpu().instructions()),
      static_cast<unsigned long long>(counters.l1d_accesses),
      static_cast<unsigned long long>(counters.l1d_misses),
      static_cast<unsigned long long>(counters.l1i_misses),
      static_cast<unsigned long long>(counters.dtlb_misses),
      static_cast<unsigned long long>(counters.branch_misses),
      static_cast<unsigned long long>(counters.branches));

  // 3. Single-fault experiment: flip one L1D bit mid-run and classify
  //    the outcome against the golden run.
  fi::RigConfig rig;  // paper-sized geometry by default
  const fi::InjectionRig injector(workload, rig,
                                  workloads::kDefaultInputSeed);
  std::printf("\ngolden run: %llu cycles, app window starts at %llu\n",
              static_cast<unsigned long long>(injector.golden().end_cycle),
              static_cast<unsigned long long>(injector.golden().spawn_cycle));

  const auto inject = [&](microarch::ComponentKind component,
                          std::uint64_t bit) {
    fi::FaultDescriptor fault;
    fault.component = component;
    fault.bit = bit;
    fault.cycle = injector.golden().spawn_cycle + 10'000;
    const fi::Outcome outcome = injector.run_one(fault);
    std::printf("flip %-8s bit %-8llu at cycle %-8llu -> %s\n",
                microarch::component_name(component).c_str(),
                static_cast<unsigned long long>(fault.bit),
                static_cast<unsigned long long>(fault.cycle),
                fi::outcome_name(outcome).c_str());
  };
  // Most L1D bits are idle in a paper-sized 32 KB cache: usually masked.
  inject(microarch::ComponentKind::kL1D, 0);
  inject(microarch::ComponentKind::kL1D, 123456);
  // Low physical registers hold live architectural state: often felt.
  for (std::uint64_t bit = 64; bit < 64 + 5 * 32; bit += 32) {
    inject(microarch::ComponentKind::kRegFile, bit + 3);
  }
  return 0;
}
