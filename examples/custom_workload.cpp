// Custom workload: assess the soft-error vulnerability of YOUR OWN code.
//
// This example defines a brand-new guest program (an insertion sort over
// 64 words) with the assembler builder API, wraps it in the Workload
// interface, and runs a fault-injection campaign over all six hardware
// components — the exact flow a user would follow to evaluate a kernel
// of their own before deploying on radiation-exposed hardware.
#include <algorithm>
#include <cstdio>

#include "sefi/core/lab.hpp"
#include "sefi/fi/campaign.hpp"
#include "sefi/support/rng.hpp"
#include "sefi/workloads/workload.hpp"

namespace {

using namespace sefi;
using isa::Assembler;
using isa::Cond;
using isa::Label;
using isa::Reg;

constexpr std::uint32_t kCount = 64;

std::vector<std::uint32_t> make_input(std::uint64_t seed) {
  support::Xoshiro256 rng(seed);
  std::vector<std::uint32_t> values(kCount);
  for (auto& v : values) v = static_cast<std::uint32_t>(rng.below(100000));
  return values;
}

/// Insertion sort in SEFI-A9 assembly; prints an FNV checksum of the
/// sorted array through the same report convention the suite uses.
class InsertionSortWorkload final : public workloads::Workload {
 public:
  const workloads::WorkloadInfo& info() const override {
    static const workloads::WorkloadInfo kInfo = {
        "InsertionSort", "64 random words", "Control intensive (user code)",
        "n/a (custom)"};
    return kInfo;
  }

  isa::Program build(std::uint64_t seed) const override {
    Assembler a(sim::kUserBase);
    Label arr = a.make_label();
    Label report_data = a.make_label();

    a.load_label(Reg::r2, arr);
    a.movi(Reg::r5, 1);  // i
    Label outer = a.make_label();
    Label outer_check = a.make_label();
    a.b(outer_check);
    a.bind(outer);
    // key = arr[i]; j = i-1
    a.lsli(Reg::r0, Reg::r5, 2);
    a.ldrr(Reg::r6, Reg::r2, Reg::r0);  // key
    a.subi(Reg::r7, Reg::r5, 1);        // j (signed)
    Label shift = a.make_label();
    Label place = a.make_label();
    a.bind(shift);
    a.cmpi(Reg::r7, 0);
    a.b(Cond::lt, place);
    a.lsli(Reg::r0, Reg::r7, 2);
    a.ldrr(Reg::r1, Reg::r2, Reg::r0);
    a.cmp(Reg::r1, Reg::r6);
    a.b(Cond::ls, place);  // arr[j] <= key
    a.addi(Reg::r3, Reg::r0, 4);
    a.strr(Reg::r1, Reg::r2, Reg::r3);  // arr[j+1] = arr[j]
    a.subi(Reg::r7, Reg::r7, 1);
    a.b(shift);
    a.bind(place);
    a.addi(Reg::r7, Reg::r7, 1);
    a.lsli(Reg::r0, Reg::r7, 2);
    a.strr(Reg::r6, Reg::r2, Reg::r0);  // arr[j+1] = key
    a.addi(Reg::r5, Reg::r5, 1);
    a.bind(outer_check);
    a.cmpi(Reg::r5, kCount);
    a.b(Cond::lt, outer);

    // Report: write the raw sorted array bytes, then exit(0).
    a.load_label(Reg::r0, arr);
    a.mov_imm32(Reg::r1, kCount * 4);
    a.movi(Reg::r7, sim::sysno::kWrite);
    a.svc(0);
    a.movi(Reg::r0, 0);
    a.movi(Reg::r7, sim::sysno::kExit);
    a.svc(0);

    a.align(4);
    a.bind(arr);
    for (const std::uint32_t v : make_input(seed)) a.word(v);
    a.bind(report_data);
    return a.finish();
  }

  std::string expected_console(std::uint64_t seed) const override {
    auto values = make_input(seed);
    std::sort(values.begin(), values.end());
    std::string out;
    for (const std::uint32_t v : values) {
      out.push_back(static_cast<char>(v));
      out.push_back(static_cast<char>(v >> 8));
      out.push_back(static_cast<char>(v >> 16));
      out.push_back(static_cast<char>(v >> 24));
    }
    return out;
  }
};

}  // namespace

int main() {
  const InsertionSortWorkload workload;

  fi::CampaignConfig config;
  config.rig.uarch = core::scaled_uarch();
  config.faults_per_component = 100;

  std::printf("fault-injecting custom workload '%s' (%llu faults/component)\n",
              workload.info().name.c_str(),
              static_cast<unsigned long long>(config.faults_per_component));
  const fi::WorkloadFiResult result = fi::run_fi_campaign(workload, config);

  std::printf("\n%-10s %8s %8s %8s %8s %8s\n", "Component", "AVF%", "SDC%",
              "AppCr%", "SysCr%", "bits");
  for (const fi::ComponentResult& comp : result.components) {
    std::printf("%-10s %8.1f %8.1f %8.1f %8.1f %8llu\n",
                microarch::component_name(comp.component).c_str(),
                comp.avf() * 100, comp.avf_sdc() * 100,
                comp.avf_app_crash() * 100, comp.avf_sys_crash() * 100,
                static_cast<unsigned long long>(comp.bits));
  }
  std::printf(
      "\nInterpretation: multiply each AVF by the component size and your "
      "technology's FIT_raw per bit to\nget the component's FIT "
      "contribution for this code (see examples/protection_advisor).\n");
  return 0;
}
