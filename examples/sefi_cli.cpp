// sefi_cli — command-line driver over the public API.
//
//   sefi_cli list
//       All workloads (paper suite, extended suite, calibration).
//   sefi_cli run <workload> [--functional] [--trace N]
//       Execute one workload; print console, exit code, counters.
//   sefi_cli inject <workload> <component> <bit> <cycle> [--double]
//       Single fault experiment; print the classified outcome.
//   sefi_cli beam <workload> [runs]
//       One simulated beam session; print events and FIT rates.
//   sefi_cli beamsweep [runs] [--threads N]
//       One session per paper-suite workload, fanned over N workers.
//   sefi_cli fi <workload> [faults-per-component] [--threads N]
//           [--checkpoints K]
//       Fault-injection campaign; print per-component classification
//       and executor throughput. N=0 means hardware concurrency.
//   sefi_cli campaign run|resume|status|export <workload> [faults]
//           [--threads N]
//       Supervised, journaled FI campaign through the lab + cache.
//       `run` starts fresh (discarding any resume journal), `resume`
//       continues an interrupted campaign from its journal, `status`
//       reports journal/cache state without running anything, `export`
//       prints the finished result in the cache's canonical serialized
//       form (the single-process reference CI diffs serve results
//       against). Ctrl-C drains cooperatively: in-flight injections
//       finish and are journaled, then the command exits 130 with a
//       resume hint.
//   sefi_cli serve [--workers N] [--once]
//       Campaign-as-a-service coordinator (DESIGN.md §14): polls
//       <cache>/serve/inbox/*.req, runs each requested campaign sharded
//       across N worker processes (SEFI_WORKERS; lease SEFI_LEASE_MS)
//       with journaled leases and work stealing, and publishes the
//       merged result — bit-identical to a single-process run — to
//       <cache>/serve/outbox/<id>.result (failures to <id>.error).
//       --once drains the inbox once and exits instead of polling.
//   sefi_cli submit <workload> [faults] [--wait]
//       Enqueue a campaign request for a running `serve`; --wait blocks
//       until its result (exit 0) or error (exit 1) is published.
//   sefi_cli shutdown
//       Ask the running `serve` coordinator to exit after the current
//       request.
//   sefi_cli cache stats [--sweep]
//       On-disk result-cache report (entries, corrupt, stale, bytes);
//       --sweep additionally runs the full compare_all sweep through
//       the cache and prints hit/miss/store/corrupt telemetry.
//   sefi_cli cache verify
//       Checksum-verify every entry; quarantine the bad ones.
//   sefi_cli cache gc
//       Drop quarantined entries, stale temps, and old-format files.
//   sefi_cli obs dump [--campaign <workload> [faults]]
//       Prometheus-style text dump of the process metrics registry;
//       --campaign first runs a mini FI campaign so the dump carries
//       non-zero series. With SEFI_TRACE=1 the trace buffer is flushed
//       too (path noted on stderr; stdout stays pure exposition).
//
// The cache directory is SEFI_CACHE_DIR (default .sefi-cache, matching
// the bench suite).
//
// Components: L1I L1D L2 RegFile ITLB DTLB.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "sefi/beam/session.hpp"
#include "sefi/core/lab.hpp"
#include "sefi/core/service.hpp"
#include "sefi/exec/supervisor.hpp"
#include "sefi/fi/campaign.hpp"
#include "sefi/kernel/kernel.hpp"
#include "sefi/microarch/detailed.hpp"
#include "sefi/obs/http.hpp"
#include "sefi/obs/metrics.hpp"
#include "sefi/obs/snapshot.hpp"
#include "sefi/obs/trace.hpp"
#include "sefi/sim/tracer.hpp"
#include "sefi/support/env.hpp"
#include "sefi/support/error.hpp"
#include "sefi/support/fsio.hpp"
#include "sefi/workloads/workload.hpp"

namespace {

using namespace sefi;

int usage() {
  std::fprintf(stderr,
               "usage: sefi_cli list\n"
               "       sefi_cli run <workload> [--functional] [--trace N]\n"
               "       sefi_cli inject <workload> <component> <bit> <cycle>"
               " [--double]\n"
               "       sefi_cli beam <workload> [runs]\n"
               "       sefi_cli beamsweep [runs] [--threads N]\n"
               "       sefi_cli fi <workload> [faults-per-component]"
               " [--threads N] [--checkpoints K]\n"
               "       sefi_cli campaign run|resume|status|export <workload>"
               " [faults] [--threads N]\n"
               "       sefi_cli serve [--workers N] [--once]"
               " (SEFI_HTTP_PORT serves /metrics /status /healthz)\n"
               "       sefi_cli submit <workload> [faults] [--wait]\n"
               "       sefi_cli shutdown\n"
               "       sefi_cli cache stats [--sweep]\n"
               "       sefi_cli cache verify\n"
               "       sefi_cli cache gc\n"
               "       sefi_cli obs dump [--campaign <workload> [faults]]"
               " [--merged]\n");
  return 2;
}

/// Every subcommand that builds a workload image honors SEFI_HARDEN, so
/// a hardened binary can be driven through the same surfaces as the
/// unprotected one (`campaign`/`serve` pick it up via LabConfig::from_env).
harden::HardenMode harden_from_env() {
  return harden::harden_mode_from_name(support::env::str("SEFI_HARDEN", "off"));
}

microarch::ComponentKind parse_component(const std::string& name) {
  for (const auto kind : microarch::kAllComponents) {
    if (microarch::component_name(kind) == name) return kind;
  }
  throw support::SefiError("unknown component: " + name +
                           " (expected L1I/L1D/L2/RegFile/ITLB/DTLB)");
}

int cmd_list() {
  std::printf("paper suite (Table III):\n");
  for (const auto* w : workloads::all_workloads()) {
    std::printf("  %-14s %s\n", w->info().name.c_str(),
                w->info().characteristics.c_str());
  }
  std::printf("extended suite:\n");
  for (const auto* w : workloads::extended_workloads()) {
    std::printf("  %-14s %s\n", w->info().name.c_str(),
                w->info().characteristics.c_str());
  }
  std::printf("calibration:\n  %-14s %s\n",
              workloads::l1_pattern_workload().info().name.c_str(),
              workloads::l1_pattern_workload().info().characteristics.c_str());
  return 0;
}

int cmd_run(const std::vector<std::string>& args) {
  if (args.empty()) return usage();
  const auto& w = workloads::workload_by_name(args[0]);
  bool functional = false;
  std::uint64_t trace = 0;
  for (std::size_t i = 1; i < args.size(); ++i) {
    if (args[i] == "--functional") {
      functional = true;
    } else if (args[i] == "--trace" && i + 1 < args.size()) {
      trace = std::strtoull(args[++i].c_str(), nullptr, 10);
    } else {
      return usage();
    }
  }
  sim::Machine m = functional
                       ? sim::Machine::make_functional()
                       : microarch::make_detailed_machine(core::scaled_uarch());
  kernel::install_system(
      m, kernel::build_kernel(),
      harden::apply(w.build(workloads::kDefaultInputSeed), harden_from_env(),
                    {}),
      workloads::kWorkloadStackTop);
  m.boot();
  if (trace > 0) {
    std::printf("%s", sim::trace_execution(m, {trace, true}).c_str());
  }
  const sim::RunEvent event = m.run(500'000'000);
  std::printf("event=%d exit=%u console=\"%s\"\n", static_cast<int>(event.kind),
              event.payload, m.console().c_str());
  std::printf("cycles=%llu instructions=%llu\n",
              static_cast<unsigned long long>(m.cpu().cycles()),
              static_cast<unsigned long long>(m.cpu().instructions()));
  const auto& c = m.counters();
  std::printf(
      "l1d: %llu acc / %llu miss | l1i miss %llu | tlb miss %llu/%llu | "
      "branch miss %llu/%llu\n",
      static_cast<unsigned long long>(c.l1d_accesses),
      static_cast<unsigned long long>(c.l1d_misses),
      static_cast<unsigned long long>(c.l1i_misses),
      static_cast<unsigned long long>(c.itlb_misses),
      static_cast<unsigned long long>(c.dtlb_misses),
      static_cast<unsigned long long>(c.branch_misses),
      static_cast<unsigned long long>(c.branches));
  const bool golden =
      m.console() == w.expected_console(workloads::kDefaultInputSeed);
  std::printf("output %s host mirror\n", golden ? "MATCHES" : "DIFFERS from");
  return golden ? 0 : 1;
}

int cmd_inject(const std::vector<std::string>& args) {
  if (args.size() < 4) return usage();
  const auto& w = workloads::workload_by_name(args[0]);
  fi::FaultDescriptor fault;
  fault.component = parse_component(args[1]);
  fault.bit = std::strtoull(args[2].c_str(), nullptr, 0);
  fault.cycle = std::strtoull(args[3].c_str(), nullptr, 0);
  if (args.size() > 4 && args[4] == "--double") {
    fault.model = fi::FaultModel::kDoubleBit;
  }
  fi::RigConfig rig;
  rig.uarch = core::scaled_uarch();
  rig.harden = harden_from_env();
  const fi::InjectionRig injector(w, rig, workloads::kDefaultInputSeed);
  std::printf("golden: %llu cycles, window [%llu, %llu]\n",
              static_cast<unsigned long long>(injector.golden().end_cycle),
              static_cast<unsigned long long>(injector.golden().spawn_cycle),
              static_cast<unsigned long long>(injector.golden().end_cycle));
  const fi::Outcome outcome = injector.run_one(fault);
  std::printf("%s bit %llu at cycle %llu (%s) -> %s\n", args[1].c_str(),
              static_cast<unsigned long long>(fault.bit),
              static_cast<unsigned long long>(fault.cycle),
              fi::fault_model_name(fault.model).c_str(),
              fi::outcome_name(outcome).c_str());
  return 0;
}

int cmd_beam(const std::vector<std::string>& args) {
  if (args.empty()) return usage();
  const auto& w = workloads::workload_by_name(args[0]);
  beam::BeamConfig config;
  config.uarch = core::scaled_uarch();
  config.harden = harden_from_env();
  if (args.size() > 1) {
    config.runs = std::strtoull(args[1].c_str(), nullptr, 10);
  }
  const beam::BeamResult r = beam::run_beam_session(w, config);
  std::printf(
      "%llu runs, %llu strikes, %llu reboots | events: sdc=%llu app=%llu "
      "sys=%llu det=%llu\n",
      static_cast<unsigned long long>(r.runs),
      static_cast<unsigned long long>(r.strikes),
      static_cast<unsigned long long>(r.reboots),
      static_cast<unsigned long long>(r.sdc),
      static_cast<unsigned long long>(r.app_crash),
      static_cast<unsigned long long>(r.sys_crash),
      static_cast<unsigned long long>(r.detected));
  std::printf(
      "FIT: sdc=%.3f app=%.3f sys=%.3f det=%.3f total=%.3f | fluence %.3e "
      "n/cm2 (%.2f M-years natural)\n",
      r.fit_sdc(), r.fit_app_crash(), r.fit_sys_crash(), r.fit_detected(),
      r.fit_total(), r.fluence_per_cm2, r.natural_years() / 1e6);
  return 0;
}

int cmd_beamsweep(const std::vector<std::string>& args) {
  beam::BeamConfig config;
  config.uarch = core::scaled_uarch();
  config.harden = harden_from_env();
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--threads" && i + 1 < args.size()) {
      config.threads = std::strtoull(args[++i].c_str(), nullptr, 10);
    } else if (i == 0) {
      config.runs = std::strtoull(args[0].c_str(), nullptr, 10);
    } else {
      return usage();
    }
  }
  const auto& suite = workloads::all_workloads();
  const std::vector<beam::BeamResult> results =
      beam::run_beam_sessions(suite, config);
  std::printf("%-14s %6s %6s %6s %6s %10s\n", "workload", "runs", "sdc",
              "app", "sys", "FIT-total");
  for (const beam::BeamResult& r : results) {
    std::printf("%-14s %6llu %6llu %6llu %6llu %10.3f\n", r.workload.c_str(),
                static_cast<unsigned long long>(r.runs),
                static_cast<unsigned long long>(r.sdc),
                static_cast<unsigned long long>(r.app_crash),
                static_cast<unsigned long long>(r.sys_crash), r.fit_total());
  }
  return 0;
}

// Shared by `fi` and `campaign`: the per-component classification table
// plus the executor / restore / supervisor stat lines. The line prefixes
// ("executor:", "restore:", "supervisor:") are stable — CI's
// kill-and-resume smoke test filters them out when diffing a resumed
// campaign against a clean one, since throughput is run-dependent.
void print_fi_result(const fi::WorkloadFiResult& result) {
  // The "detected" column appears only when some run actually reached a
  // hardened workload's detection handler: SEFI_HARDEN=off output stays
  // byte-identical to pre-hardening builds (CI diffs it against
  // committed reference fixtures).
  bool any_detected = false;
  for (const auto& comp : result.components) {
    any_detected = any_detected || comp.counts.detected > 0;
  }
  std::printf("%-10s %8s %8s %8s %8s %8s", "component", "masked", "sdc",
              "appcr", "syscr", "harness");
  if (any_detected) std::printf(" %8s", "detect");
  std::printf(" %8s %9s\n", "AVF%", "margin%");
  for (const auto& comp : result.components) {
    std::printf("%-10s %8llu %8llu %8llu %8llu %8llu",
                microarch::component_name(comp.component).c_str(),
                static_cast<unsigned long long>(comp.counts.masked),
                static_cast<unsigned long long>(comp.counts.sdc),
                static_cast<unsigned long long>(comp.counts.app_crash),
                static_cast<unsigned long long>(comp.counts.sys_crash),
                static_cast<unsigned long long>(comp.counts.harness_error));
    if (any_detected) {
      std::printf(" %8llu",
                  static_cast<unsigned long long>(comp.counts.detected));
    }
    std::printf(" %8.1f %9.2f\n", comp.avf() * 100, comp.error_margin * 100);
  }
  const fi::CampaignStats& stats = result.stats;
  std::printf(
      "executor: %llu threads, %llu checkpoints | %.1f inj/s "
      "(%llu injections in %.2fs) | replay %llu cycles, %llu saved "
      "(%llu ladder + %llu boot)\n",
      static_cast<unsigned long long>(stats.threads),
      static_cast<unsigned long long>(stats.checkpoints),
      stats.injections_per_sec,
      static_cast<unsigned long long>(stats.injections), stats.wall_seconds,
      static_cast<unsigned long long>(stats.replay_cycles),
      static_cast<unsigned long long>(stats.replay_cycles_saved),
      static_cast<unsigned long long>(stats.replay_cycles_saved_ladder),
      static_cast<unsigned long long>(stats.replay_cycles_saved_boot));
  // "executor:" prefix on purpose: run-dependent, CI filters it (above).
  std::printf(
      "executor: fastpath %s | uops %llu fast + %llu decode hits, "
      "%llu misses, %llu invalidations | %.1f guest MIPS\n",
      sim::fastpath_name(sim::fastpath_from_env()),
      static_cast<unsigned long long>(stats.uop_hits),
      static_cast<unsigned long long>(stats.uop_decode_hits),
      static_cast<unsigned long long>(stats.uop_misses),
      static_cast<unsigned long long>(stats.uop_invalidations),
      stats.guest_mips);
  std::printf(
      "restore: %llu delta + %llu full | %.2f MB copied "
      "(%.3f pages/delta-restore) | ladder resident %.2f MB\n",
      static_cast<unsigned long long>(stats.delta_restores),
      static_cast<unsigned long long>(stats.full_restores),
      static_cast<double>(stats.restore_bytes_copied) / (1024.0 * 1024.0),
      stats.pages_dirtied_avg,
      static_cast<double>(stats.ladder_resident_bytes) / (1024.0 * 1024.0));
  // "executor:" prefix on purpose: pruning changes how the result was
  // computed, not (in classify mode) what it is, so CI's diff-based
  // smoke tests filter this line like the other run-dependent ones.
  std::printf(
      "executor: prune %llu sites skipped + %llu live (%llu executed) | "
      "pruned fraction %.3f\n",
      static_cast<unsigned long long>(stats.pruned_sites),
      static_cast<unsigned long long>(stats.live_sites),
      static_cast<unsigned long long>(stats.live_sites_executed),
      stats.pruned_fraction);
  std::printf(
      "supervisor: %llu run + %llu replayed from journal | %llu retries, "
      "%llu harness errors, %llu watchdog hits, %llu cancelled\n",
      static_cast<unsigned long long>(stats.tasks_run),
      static_cast<unsigned long long>(stats.journal_replayed),
      static_cast<unsigned long long>(stats.task_retries),
      static_cast<unsigned long long>(stats.harness_errors),
      static_cast<unsigned long long>(stats.watchdog_hits),
      static_cast<unsigned long long>(stats.cancelled_tasks));
}

int cmd_fi(const std::vector<std::string>& args) {
  if (args.empty()) return usage();
  const auto& w = workloads::workload_by_name(args[0]);
  fi::CampaignConfig config;
  config.rig.uarch = core::scaled_uarch();
  config.rig.delta_restore = support::env::flag("SEFI_DELTA_RESTORE", true);
  config.max_task_retries = support::env::u64("SEFI_MAX_TASK_RETRIES", 2);
  config.task_deadline_ms = support::env::u64("SEFI_TASK_DEADLINE_MS", 0);
  config.prune =
      fi::prune_mode_from_name(support::env::str("SEFI_PRUNE", "off"));
  config.rig.harden = harden_from_env();
  config.faults_per_component = 150;
  for (std::size_t i = 1; i < args.size(); ++i) {
    if (args[i] == "--threads" && i + 1 < args.size()) {
      config.threads = std::strtoull(args[++i].c_str(), nullptr, 10);
    } else if (args[i] == "--checkpoints" && i + 1 < args.size()) {
      config.checkpoints = std::strtoull(args[++i].c_str(), nullptr, 10);
    } else if (i == 1) {
      config.faults_per_component =
          std::strtoull(args[1].c_str(), nullptr, 10);
    } else {
      return usage();
    }
  }
  const fi::WorkloadFiResult result = fi::run_fi_campaign(w, config);
  print_fi_result(result);
  return 0;
}

int cmd_campaign(const std::vector<std::string>& args) {
  if (args.size() < 2) return usage();
  const std::string& action = args[0];
  if (action != "run" && action != "resume" && action != "status" &&
      action != "export") {
    return usage();
  }
  const auto& w = workloads::workload_by_name(args[1]);
  // Journals live next to the cache entries; mirror the bench suite's
  // default directory so `campaign` and `cache` agree.
  if (std::getenv("SEFI_CACHE_DIR") == nullptr) {
    ::setenv("SEFI_CACHE_DIR", ".sefi-cache", 0);
  }
  core::LabConfig config = core::LabConfig::from_env();
  for (std::size_t i = 2; i < args.size(); ++i) {
    if (args[i] == "--threads" && i + 1 < args.size()) {
      config.fi.threads = std::strtoull(args[++i].c_str(), nullptr, 10);
    } else if (i == 2) {
      config.fi.faults_per_component =
          std::strtoull(args[2].c_str(), nullptr, 10);
    } else {
      return usage();
    }
  }

  if (action == "status") {
    const core::AssessmentLab lab(config);
    const auto status = lab.fi_journal_status(w);
    std::printf("workload: %s (%llu injections)\n", w.info().name.c_str(),
                static_cast<unsigned long long>(status.total));
    std::printf("cached result: %s\n", status.cached ? "yes" : "no");
    if (!status.enabled) {
      std::printf("journal: disabled (SEFI_JOURNAL=0 or no cache dir)\n");
    } else if (status.present) {
      std::printf("journal: %llu/%llu injections resolved (%s)\n",
                  static_cast<unsigned long long>(status.records),
                  static_cast<unsigned long long>(status.total),
                  status.path.c_str());
      std::printf(
          "resolved: masked=%llu sdc=%llu appcrash=%llu syscrash=%llu "
          "harness=%llu detected=%llu\n",
          static_cast<unsigned long long>(status.resolved.masked),
          static_cast<unsigned long long>(status.resolved.sdc),
          static_cast<unsigned long long>(status.resolved.app_crash),
          static_cast<unsigned long long>(status.resolved.sys_crash),
          static_cast<unsigned long long>(status.resolved.harness_error),
          static_cast<unsigned long long>(status.resolved.detected));
      if (status.has_telemetry) {
        std::printf(
            "supervisor: %llu retries, %llu watchdog hits, "
            "%llu harness errors (recovered from journal)\n",
            static_cast<unsigned long long>(status.telemetry.retries),
            static_cast<unsigned long long>(status.telemetry.watchdog_hits),
            static_cast<unsigned long long>(status.telemetry.harness_errors));
      }
    } else {
      std::printf("journal: none (%s)\n", status.path.c_str());
    }
    return 0;
  }

  if (action == "export") {
    // Canonical serialized form only, nothing else on stdout: the serve
    // outbox publishes the same bytes, so CI can `diff` the two files.
    core::AssessmentLab lab(config);
    std::fputs(core::serialize(lab.run_fi(w)).c_str(), stdout);
    return 0;
  }

  // Cooperative SIGINT drain: first ^C stops workers from pulling new
  // injections (in-flight ones finish and journal), a second ^C restores
  // the default handler.
  exec::sigint_token().reset();
  exec::install_sigint_drain();
  config.fi.cancel = &exec::sigint_token();
  config.beam.cancel = &exec::sigint_token();

  core::AssessmentLab lab(config);
  if (action == "run") lab.discard_fi_journal(w);
  try {
    print_fi_result(lab.run_fi(w));
  } catch (const core::CampaignInterrupted& interrupted) {
    std::fprintf(stderr, "interrupted: %s\n", interrupted.what());
    std::fprintf(stderr, "resume with: sefi_cli campaign resume %s\n",
                 w.info().name.c_str());
    return 130;
  }
  return 0;
}

// -- Campaign-as-a-service (DESIGN.md §14) ----------------------------------
// The request transport is the filesystem, same durability story as the
// cache itself: submit atomically publishes <id>.req into the inbox,
// serve claims it by unlink, runs the sharded campaign, and atomically
// publishes <id>.result (or <id>.error) into the outbox. The request id
// is `<workload>-<faults>`, so a request is idempotent: re-submitting
// the same campaign overwrites the same files.

std::string serve_root() {
  return core::ResultCache::from_env().directory() + "/serve";
}

std::string request_id(const std::string& workload, std::uint64_t faults) {
  return workload + "-" + std::to_string(faults);
}

/// Parses an inbox request ("workload <name>\nfaults <n>\n"); faults 0
/// means "serve's default campaign size".
bool parse_request(const std::string& text, std::string* workload,
                   std::uint64_t* faults) {
  std::istringstream is(text);
  std::string tag;
  *faults = 0;
  if (!(is >> tag >> *workload) || tag != "workload") return false;
  if (is >> tag && (tag != "faults" || !(is >> *faults))) return false;
  return true;
}

int cmd_serve(const std::vector<std::string>& args) {
  if (std::getenv("SEFI_CACHE_DIR") == nullptr) {
    ::setenv("SEFI_CACHE_DIR", ".sefi-cache", 0);
  }
  core::ServeConfig serve;
  serve.workers = support::env::u64("SEFI_WORKERS", 4);
  serve.lease_ms = support::env::u64("SEFI_LEASE_MS", 120'000);
  serve.self_kill_marker = support::env::str("SEFI_SERVE_SELF_KILL", "");
  bool once = false;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--workers" && i + 1 < args.size()) {
      serve.workers = std::strtoull(args[++i].c_str(), nullptr, 10);
    } else if (args[i] == "--once") {
      once = true;
    } else {
      return usage();
    }
  }
  const core::LabConfig base = core::LabConfig::from_env();
  const std::string root = serve_root();
  if (root == "/serve") {
    std::fprintf(stderr, "serve: needs SEFI_CACHE_DIR (journals and the "
                         "request queue live there)\n");
    return 1;
  }
  namespace fs = std::filesystem;
  const std::string inbox = root + "/inbox";
  const std::string outbox = root + "/outbox";
  const std::string stop = root + "/stop";
  const std::string workers_dir = root + "/workers";
  fs::create_directories(inbox);
  fs::create_directories(outbox);
  // Fresh serve process, fresh fleet: stale <pid>.metrics fallback files
  // from an earlier coordinator would otherwise merge as phantom workers.
  {
    std::error_code ec;
    fs::remove_all(workers_dir, ec);
    fs::create_directories(workers_dir, ec);
  }
  core::ServeMonitor monitor(workers_dir);
  monitor.set_pool_info(serve.workers, serve.lease_ms,
                        /*respawn_budget=*/16);
  serve.monitor = &monitor;

  // The observability plane (DESIGN.md §16). Off by default; served
  // from this coordinator thread — never a background thread, which
  // could not coexist with the fork-per-worker pool.
  obs::HttpServer http;
  const std::uint64_t http_port = support::env::u64("SEFI_HTTP_PORT", 0);
  if (http_port != 0) {
    if (!http.start(static_cast<std::uint16_t>(http_port))) {
      std::fprintf(stderr, "serve: could not bind 127.0.0.1:%llu\n",
                   static_cast<unsigned long long>(http_port));
      return 1;
    }
    http.set_handler([&monitor](const obs::HttpRequest& request) {
      obs::HttpResponse response;
      if (request.path == "/metrics") {
        response.content_type = "text/plain; version=0.0.4; charset=utf-8";
        response.body = monitor.metrics_text();
      } else if (request.path == "/status") {
        response.content_type = "application/json";
        response.body = monitor.status_json();
      } else if (request.path == "/healthz") {
        response.body = "ok\n";
      } else {
        response.status = 404;
        response.body = "not found\n";
      }
      return response;
    });
    serve.on_tick = [&http] { (void)http.poll_once(0); };
    std::printf("serve: http on 127.0.0.1:%d (/metrics /status /healthz)\n",
                http.port());
  }

  std::printf("serve: %llu workers, lease %llu ms, inbox %s\n",
              static_cast<unsigned long long>(serve.workers),
              static_cast<unsigned long long>(serve.lease_ms), inbox.c_str());
  std::fflush(stdout);

  for (;;) {
    std::vector<std::string> requests;
    for (const auto& entry : fs::directory_iterator(inbox)) {
      if (entry.path().extension() == ".req") {
        requests.push_back(entry.path().string());
      }
    }
    std::sort(requests.begin(), requests.end());  // stable service order
    for (const std::string& request_path : requests) {
      const std::string id = fs::path(request_path).stem().string();
      const std::optional<std::string> text =
          support::read_file(request_path);
      std::error_code ec;
      fs::remove(request_path, ec);  // claim: at most one execution
      std::string workload_name;
      std::uint64_t faults = 0;
      if (!text || !parse_request(*text, &workload_name, &faults)) {
        (void)support::write_file_atomic(outbox + "/" + id + ".error",
                                         "malformed request\n");
        continue;
      }
      try {
        const auto& w = workloads::workload_by_name(workload_name);
        core::LabConfig config = base;
        if (faults > 0) config.fi.faults_per_component = faults;
        core::AssessmentLab lab(config);
        core::ServeStats stats;
        const fi::WorkloadFiResult& result =
            core::serve_fi_campaign(lab, w, serve, &stats);
        std::printf(
            "serve: %s -> %llu shards (%llu resumed), %llu done | "
            "%llu leases reclaimed (%llu expiries), %llu worker deaths, "
            "%llu respawned | %llu records merged\n",
            id.c_str(), static_cast<unsigned long long>(stats.shards),
            static_cast<unsigned long long>(stats.shards_resumed),
            static_cast<unsigned long long>(stats.shards_done),
            static_cast<unsigned long long>(stats.leases_reclaimed),
            static_cast<unsigned long long>(stats.lease_expiries),
            static_cast<unsigned long long>(stats.worker_deaths),
            static_cast<unsigned long long>(stats.workers_respawned),
            static_cast<unsigned long long>(stats.merged_records));
        std::fflush(stdout);
        if (!support::write_file_atomic(outbox + "/" + id + ".result",
                                        core::serialize(result))) {
          throw support::SefiError("could not publish result for " + id);
        }
      } catch (const std::exception& error) {
        std::fprintf(stderr, "serve: %s failed: %s\n", id.c_str(),
                     error.what());
        (void)support::write_file_atomic(outbox + "/" + id + ".error",
                                         std::string(error.what()) + "\n");
      }
    }
    if (fs::exists(stop)) {
      std::error_code ec;
      fs::remove(stop, ec);
      std::printf("serve: stop requested, exiting\n");
      break;
    }
    if (once) break;
    // Idle wait doubles as the HTTP service loop: scrapes between
    // campaigns answer from the last merged fleet view.
    if (http.running()) {
      (void)http.poll_once(200);
    } else {
      std::this_thread::sleep_for(std::chrono::milliseconds(200));
    }
  }
  return 0;
}

int cmd_submit(const std::vector<std::string>& args) {
  if (args.empty()) return usage();
  if (std::getenv("SEFI_CACHE_DIR") == nullptr) {
    ::setenv("SEFI_CACHE_DIR", ".sefi-cache", 0);
  }
  const std::string& workload_name = args[0];
  (void)workloads::workload_by_name(workload_name);  // fail fast on typos
  std::uint64_t faults = 0;
  bool wait = false;
  for (std::size_t i = 1; i < args.size(); ++i) {
    if (args[i] == "--wait") {
      wait = true;
    } else if (i == 1) {
      faults = std::strtoull(args[1].c_str(), nullptr, 10);
    } else {
      return usage();
    }
  }
  const std::string root = serve_root();
  if (root == "/serve") {
    std::fprintf(stderr, "submit: needs SEFI_CACHE_DIR\n");
    return 1;
  }
  std::filesystem::create_directories(root + "/inbox");
  std::filesystem::create_directories(root + "/outbox");
  const std::string id = request_id(workload_name, faults);
  const std::string result_path = root + "/outbox/" + id + ".result";
  const std::string error_path = root + "/outbox/" + id + ".error";
  // A re-submitted campaign means "run it again": clear stale outcomes
  // so --wait observes this request, not a previous one's files.
  std::error_code ec;
  std::filesystem::remove(result_path, ec);
  std::filesystem::remove(error_path, ec);
  std::string request = "workload " + workload_name + "\n";
  if (faults > 0) request += "faults " + std::to_string(faults) + "\n";
  if (!support::write_file_atomic(root + "/inbox/" + id + ".req", request)) {
    std::fprintf(stderr, "submit: could not write request\n");
    return 1;
  }
  std::printf("submitted %s\n", id.c_str());
  if (!wait) return 0;
  for (;;) {
    if (std::filesystem::exists(result_path)) {
      std::printf("result: %s\n", result_path.c_str());
      return 0;
    }
    if (std::filesystem::exists(error_path)) {
      const auto text = support::read_file(error_path);
      std::fprintf(stderr, "error: %s", text ? text->c_str() : "(unknown)\n");
      return 1;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
}

int cmd_shutdown() {
  if (std::getenv("SEFI_CACHE_DIR") == nullptr) {
    ::setenv("SEFI_CACHE_DIR", ".sefi-cache", 0);
  }
  const std::string root = serve_root();
  if (root == "/serve") {
    std::fprintf(stderr, "shutdown: needs SEFI_CACHE_DIR\n");
    return 1;
  }
  std::filesystem::create_directories(root);
  if (!support::write_file_atomic(root + "/stop", "stop\n")) {
    std::fprintf(stderr, "shutdown: could not write stop file\n");
    return 1;
  }
  std::printf("shutdown requested (%s/stop)\n", root.c_str());
  return 0;
}

void print_telemetry(const core::ResultCache::Telemetry& t) {
  std::printf(
      "telemetry: %llu hits (%llu memo + %llu disk), %llu misses, "
      "%llu stores, %llu store failures\n"
      "           %llu corrupt quarantined, %llu version-skew skipped | "
      "%llu bytes read, %llu bytes written\n",
      static_cast<unsigned long long>(t.hits()),
      static_cast<unsigned long long>(t.memo_hits),
      static_cast<unsigned long long>(t.disk_hits),
      static_cast<unsigned long long>(t.misses),
      static_cast<unsigned long long>(t.stores),
      static_cast<unsigned long long>(t.store_failures),
      static_cast<unsigned long long>(t.corrupt_quarantined),
      static_cast<unsigned long long>(t.version_skew),
      static_cast<unsigned long long>(t.bytes_read),
      static_cast<unsigned long long>(t.bytes_written));
}

int cmd_cache(const std::vector<std::string>& args) {
  if (args.empty()) return usage();
  // Mirror the bench suite's default so `cache` subcommands inspect the
  // same directory the benches populate.
  if (std::getenv("SEFI_CACHE_DIR") == nullptr) {
    ::setenv("SEFI_CACHE_DIR", ".sefi-cache", 0);
  }
  const core::ResultCache cache = core::ResultCache::from_env();
  if (!cache.enabled()) {
    std::fprintf(stderr, "cache disabled (SEFI_CACHE_DIR is empty)\n");
    return 1;
  }

  if (args[0] == "stats") {
    const bool sweep = args.size() > 1 && args[1] == "--sweep";
    if (args.size() > (sweep ? 2u : 1u)) return usage();
    const auto report = cache.verify(false);
    std::printf("cache dir: %s\n", cache.directory().c_str());
    std::printf(
        "entries: %llu (%llu valid, %llu corrupt, %llu old-format) | "
        "%llu quarantined, %llu stale temps | %llu bytes\n",
        static_cast<unsigned long long>(report.entries),
        static_cast<unsigned long long>(report.valid),
        static_cast<unsigned long long>(report.corrupt),
        static_cast<unsigned long long>(report.version_skew),
        static_cast<unsigned long long>(report.quarantined),
        static_cast<unsigned long long>(report.temp_files),
        static_cast<unsigned long long>(report.bytes));
    if (sweep) {
      core::AssessmentLab lab(core::LabConfig::from_env());
      const auto comparisons = lab.compare_all();
      std::printf("sweep: %zu workloads compared\n", comparisons.size());
      print_telemetry(lab.cache_telemetry());
    }
    return 0;
  }

  if (args[0] == "verify" && args.size() == 1) {
    const auto report = cache.verify(true);
    std::printf(
        "verified %llu entries: %llu valid, %llu corrupt (quarantined), "
        "%llu old-format (run `cache gc` to reclaim)\n",
        static_cast<unsigned long long>(report.entries),
        static_cast<unsigned long long>(report.valid),
        static_cast<unsigned long long>(report.corrupt),
        static_cast<unsigned long long>(report.version_skew));
    return report.corrupt > 0 ? 1 : 0;
  }

  if (args[0] == "gc" && args.size() == 1) {
    const auto report = cache.gc();
    std::printf(
        "gc: removed %llu files (%llu stale temps), reclaimed %llu bytes, "
        "migrated %llu flat entries into shards\n",
        static_cast<unsigned long long>(report.removed_files),
        static_cast<unsigned long long>(report.temps_swept),
        static_cast<unsigned long long>(report.bytes_reclaimed),
        static_cast<unsigned long long>(report.migrated));
    return 0;
  }

  return usage();
}

int cmd_obs(const std::vector<std::string>& args) {
  if (args.empty() || args[0] != "dump") return usage();
  if (args.size() == 2 && args[1] == "--merged") {
    // Fleet view without the HTTP plane: fold this process's registry
    // with every worker's `<serve>/workers/<pid>.metrics` fallback file
    // (torn files are quarantined by the decode seal check).
    if (std::getenv("SEFI_CACHE_DIR") == nullptr) {
      ::setenv("SEFI_CACHE_DIR", ".sefi-cache", 0);
    }
    const core::ServeMonitor monitor(serve_root() + "/workers");
    std::fputs(monitor.metrics_text().c_str(), stdout);
    return 0;
  }
  if (args.size() > 1) {
    if (args[1] != "--campaign" || args.size() < 3 || args.size() > 4) {
      return usage();
    }
    const auto& w = workloads::workload_by_name(args[2]);
    fi::CampaignConfig config;
    config.rig.uarch = core::scaled_uarch();
    config.rig.harden = harden_from_env();
    config.faults_per_component =
        args.size() > 3 ? std::strtoull(args[3].c_str(), nullptr, 10) : 10;
    (void)fi::run_fi_campaign(w, config);
  }
  std::fputs(obs::Registry::instance().expose_text().c_str(), stdout);
  obs::Tracer& tracer = obs::Tracer::instance();
  if (tracer.enabled() && tracer.flush()) {
    std::fprintf(stderr, "trace: %zu events written to %s\n",
                 tracer.event_count(), tracer.path().c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string command = argv[1];
  std::vector<std::string> args(argv + 2, argv + argc);
  try {
    if (command == "list") return cmd_list();
    if (command == "run") return cmd_run(args);
    if (command == "inject") return cmd_inject(args);
    if (command == "beam") return cmd_beam(args);
    if (command == "beamsweep") return cmd_beamsweep(args);
    if (command == "fi") return cmd_fi(args);
    if (command == "campaign") return cmd_campaign(args);
    if (command == "serve") return cmd_serve(args);
    if (command == "submit") return cmd_submit(args);
    if (command == "shutdown" && args.empty()) return cmd_shutdown();
    if (command == "cache") return cmd_cache(args);
    if (command == "obs") return cmd_obs(args);
  } catch (const std::exception& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    return 1;
  }
  return usage();
}
