// Beam-campaign planner: how much accelerated beam time does a target
// precision cost?
//
// Beam experiments are scheduled in facility-hours (the paper used ~260
// effective hours at LANSCE for 2.9 M-years of natural exposure). Given
// an expected FIT rate and a desired confidence-interval width, this
// tool inverts the Poisson counting statistics to the fluence — and
// therefore beam hours — required, for a range of expected rates. Pure
// statistics, no simulation: runs instantly.
#include <cstdio>

#include "sefi/stats/confidence.hpp"
#include "sefi/stats/fit.hpp"

namespace {

/// Events needed so the 95% Poisson CI half-width is within
/// `relative_precision` of the point estimate.
std::uint64_t events_for_precision(double relative_precision) {
  for (std::uint64_t events = 1; events < 1'000'000; ++events) {
    const sefi::stats::Interval ci =
        sefi::stats::poisson_interval(events, 0.95);
    const double half_width =
        (ci.upper - ci.lower) / 2.0 / static_cast<double>(events);
    if (half_width <= relative_precision) return events;
  }
  return 0;
}

}  // namespace

int main() {
  constexpr double kAccelFlux = 3.5e5;  // n/cm^2/s, the paper's LANSCE beam

  std::printf(
      "Beam-time planner (flux %.1e n/cm^2/s, 95%% Poisson intervals)\n\n",
      kAccelFlux);
  std::printf("Events required per relative precision target:\n");
  std::printf("  %-12s %-10s\n", "precision", "events");
  for (const double precision : {0.5, 0.25, 0.10, 0.05}) {
    char label[16];
    std::snprintf(label, sizeof label, "+/-%.0f%%", precision * 100);
    std::printf("  %-12s %-10llu\n", label,
                static_cast<unsigned long long>(
                    events_for_precision(precision)));
  }

  std::printf(
      "\nBeam hours to reach +/-25%% on a failure class, by expected FIT "
      "rate:\n");
  std::printf("  %-12s %-14s %-14s %-14s\n", "FIT", "sigma (cm^2)",
              "fluence (n/cm2)", "beam hours");
  const std::uint64_t events = events_for_precision(0.25);
  for (const double fit : {0.1, 1.0, 5.0, 20.0, 100.0}) {
    // FIT = sigma * 13 * 1e9  =>  sigma = FIT / 1.3e10.
    const double sigma = fit / (sefi::stats::kNycFluxPerCm2Hour * 1e9);
    const double fluence = static_cast<double>(events) / sigma;
    const double hours = fluence / kAccelFlux / 3600.0;
    std::printf("  %-12.1f %-14.3e %-14.3e %-14.1f\n", fit, sigma, fluence,
                hours);
  }
  std::printf(
      "\n(reference: the paper's 260 effective hours bought ~2.9 M-years "
      "of natural exposure, i.e. fluence %.2e n/cm^2 —\n enough for "
      "tens-of-FIT classes but leaving sub-FIT SDC rates inside wide "
      "intervals, exactly the Fig. 6 outliers.)\n",
      sefi::stats::fluence_from_exposure(kAccelFlux, 260.0 * 3600));
  return 0;
}
