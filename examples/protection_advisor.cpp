// Protection advisor: the paper's closing motivation turned into a tool.
//
// "The insights of our study can assist CPU designers in making informed
//  decisions about the soft error protection mechanisms best suited to a
//  particular hardware and software combination." (§VII)
//
// This example runs the fault-injection campaign for a set of workloads,
// converts AVFs to FIT with the calibrated FIT_raw, and then evaluates
// protection options: for each hardware component, what fraction of the
// predicted failure rate disappears if that component is protected (ECC /
// parity zeroes its contribution)? It prints a ranked protection plan and
// the residual FIT after each step — bracketed by the beam-vs-FI bounds
// of Fig. 10 so the designer sees the uncertainty band, not just a point.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "sefi/core/lab.hpp"
#include "sefi/stats/fit.hpp"

int main() {
  using namespace sefi;

  core::LabConfig config = core::LabConfig::from_env(/*default_faults=*/100,
                                                     /*default_beam_runs=*/400);
  core::AssessmentLab lab(config);

  const std::vector<const char*> workloads_under_study = {"MatMul", "FFT",
                                                          "Qsort"};
  std::printf("calibrating FIT_raw...\n");
  const double fit_raw = lab.fit_raw_per_bit();
  std::printf("FIT_raw = %.3e FIT/bit\n\n", fit_raw);

  // Accumulate each component's FIT contribution across the workload mix.
  struct Contribution {
    microarch::ComponentKind kind;
    double fit = 0;
  };
  std::vector<Contribution> contributions;
  for (const auto kind : microarch::kAllComponents) {
    contributions.push_back({kind, 0.0});
  }
  double beam_total = 0;

  for (const char* name : workloads_under_study) {
    const auto& workload = workloads::workload_by_name(name);
    std::printf("assessing %s...\n", name);
    const fi::WorkloadFiResult& fi_result = lab.run_fi(workload);
    for (std::size_t i = 0; i < fi_result.components.size(); ++i) {
      const auto& comp = fi_result.components[i];
      contributions[i].fit += stats::fit_from_avf(
          fit_raw, static_cast<double>(comp.bits), comp.avf());
    }
    beam_total += lab.run_beam(workload).fit_total();
  }
  const auto n = static_cast<double>(workloads_under_study.size());
  for (auto& c : contributions) c.fit /= n;
  beam_total /= n;

  double fi_total = 0;
  for (const auto& c : contributions) fi_total += c.fit;

  std::printf(
      "\nPredicted failure-rate band for this workload mix:\n"
      "  fault-injection estimate (lower bound): %8.2f FIT\n"
      "  beam estimate (upper bound, incl. platform): %8.2f FIT\n\n",
      fi_total, beam_total);

  // Rank components by FIT contribution and print the protection plan.
  std::sort(contributions.begin(), contributions.end(),
            [](const Contribution& a, const Contribution& b) {
              return a.fit > b.fit;
            });
  std::printf("Protection plan (greedy, by modeled FIT contribution):\n");
  std::printf("%-4s %-10s %12s %12s %10s\n", "#", "protect", "FIT removed",
              "residual", "residual%");
  double residual = fi_total;
  int step = 1;
  for (const auto& c : contributions) {
    residual -= c.fit;
    std::printf("%-4d %-10s %12.3f %12.3f %9.1f%%\n", step,
                microarch::component_name(c.kind).c_str(), c.fit, residual,
                fi_total > 0 ? 100.0 * residual / fi_total : 0.0);
    ++step;
  }
  std::printf(
      "\nNote: the beam-side excess (%.2f FIT) stems from structures no "
      "core-level protection reaches\n(platform logic, interfaces) — the "
      "paper's argument for combining both methodologies.\n",
      beam_total - fi_total);
  return 0;
}
