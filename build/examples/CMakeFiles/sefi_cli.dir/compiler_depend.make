# Empty compiler generated dependencies file for sefi_cli.
# This may be replaced when dependencies are built.
