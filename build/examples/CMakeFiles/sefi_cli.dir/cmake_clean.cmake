file(REMOVE_RECURSE
  "CMakeFiles/sefi_cli.dir/sefi_cli.cpp.o"
  "CMakeFiles/sefi_cli.dir/sefi_cli.cpp.o.d"
  "sefi_cli"
  "sefi_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sefi_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
