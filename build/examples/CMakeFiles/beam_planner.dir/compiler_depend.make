# Empty compiler generated dependencies file for beam_planner.
# This may be replaced when dependencies are built.
