file(REMOVE_RECURSE
  "CMakeFiles/beam_planner.dir/beam_planner.cpp.o"
  "CMakeFiles/beam_planner.dir/beam_planner.cpp.o.d"
  "beam_planner"
  "beam_planner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/beam_planner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
