file(REMOVE_RECURSE
  "CMakeFiles/protection_advisor.dir/protection_advisor.cpp.o"
  "CMakeFiles/protection_advisor.dir/protection_advisor.cpp.o.d"
  "protection_advisor"
  "protection_advisor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/protection_advisor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
