# Empty compiler generated dependencies file for protection_advisor.
# This may be replaced when dependencies are built.
