# Empty dependencies file for sefi_tests.
# This may be replaced when dependencies are built.
