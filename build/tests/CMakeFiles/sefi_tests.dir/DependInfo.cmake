
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/beam/session_test.cpp" "tests/CMakeFiles/sefi_tests.dir/beam/session_test.cpp.o" "gcc" "tests/CMakeFiles/sefi_tests.dir/beam/session_test.cpp.o.d"
  "/root/repo/tests/core/lab_test.cpp" "tests/CMakeFiles/sefi_tests.dir/core/lab_test.cpp.o" "gcc" "tests/CMakeFiles/sefi_tests.dir/core/lab_test.cpp.o.d"
  "/root/repo/tests/core/result_cache_test.cpp" "tests/CMakeFiles/sefi_tests.dir/core/result_cache_test.cpp.o" "gcc" "tests/CMakeFiles/sefi_tests.dir/core/result_cache_test.cpp.o.d"
  "/root/repo/tests/faultinject/ace_test.cpp" "tests/CMakeFiles/sefi_tests.dir/faultinject/ace_test.cpp.o" "gcc" "tests/CMakeFiles/sefi_tests.dir/faultinject/ace_test.cpp.o.d"
  "/root/repo/tests/faultinject/campaign_test.cpp" "tests/CMakeFiles/sefi_tests.dir/faultinject/campaign_test.cpp.o" "gcc" "tests/CMakeFiles/sefi_tests.dir/faultinject/campaign_test.cpp.o.d"
  "/root/repo/tests/faultinject/protection_test.cpp" "tests/CMakeFiles/sefi_tests.dir/faultinject/protection_test.cpp.o" "gcc" "tests/CMakeFiles/sefi_tests.dir/faultinject/protection_test.cpp.o.d"
  "/root/repo/tests/isa/assembler_test.cpp" "tests/CMakeFiles/sefi_tests.dir/isa/assembler_test.cpp.o" "gcc" "tests/CMakeFiles/sefi_tests.dir/isa/assembler_test.cpp.o.d"
  "/root/repo/tests/isa/encode_test.cpp" "tests/CMakeFiles/sefi_tests.dir/isa/encode_test.cpp.o" "gcc" "tests/CMakeFiles/sefi_tests.dir/isa/encode_test.cpp.o.d"
  "/root/repo/tests/isa/property_test.cpp" "tests/CMakeFiles/sefi_tests.dir/isa/property_test.cpp.o" "gcc" "tests/CMakeFiles/sefi_tests.dir/isa/property_test.cpp.o.d"
  "/root/repo/tests/kernel/kernel_test.cpp" "tests/CMakeFiles/sefi_tests.dir/kernel/kernel_test.cpp.o" "gcc" "tests/CMakeFiles/sefi_tests.dir/kernel/kernel_test.cpp.o.d"
  "/root/repo/tests/microarch/cache_property_test.cpp" "tests/CMakeFiles/sefi_tests.dir/microarch/cache_property_test.cpp.o" "gcc" "tests/CMakeFiles/sefi_tests.dir/microarch/cache_property_test.cpp.o.d"
  "/root/repo/tests/microarch/cache_test.cpp" "tests/CMakeFiles/sefi_tests.dir/microarch/cache_test.cpp.o" "gcc" "tests/CMakeFiles/sefi_tests.dir/microarch/cache_test.cpp.o.d"
  "/root/repo/tests/microarch/detailed_test.cpp" "tests/CMakeFiles/sefi_tests.dir/microarch/detailed_test.cpp.o" "gcc" "tests/CMakeFiles/sefi_tests.dir/microarch/detailed_test.cpp.o.d"
  "/root/repo/tests/microarch/predictor_test.cpp" "tests/CMakeFiles/sefi_tests.dir/microarch/predictor_test.cpp.o" "gcc" "tests/CMakeFiles/sefi_tests.dir/microarch/predictor_test.cpp.o.d"
  "/root/repo/tests/microarch/regfile_test.cpp" "tests/CMakeFiles/sefi_tests.dir/microarch/regfile_test.cpp.o" "gcc" "tests/CMakeFiles/sefi_tests.dir/microarch/regfile_test.cpp.o.d"
  "/root/repo/tests/microarch/tlb_test.cpp" "tests/CMakeFiles/sefi_tests.dir/microarch/tlb_test.cpp.o" "gcc" "tests/CMakeFiles/sefi_tests.dir/microarch/tlb_test.cpp.o.d"
  "/root/repo/tests/report/render_test.cpp" "tests/CMakeFiles/sefi_tests.dir/report/render_test.cpp.o" "gcc" "tests/CMakeFiles/sefi_tests.dir/report/render_test.cpp.o.d"
  "/root/repo/tests/sim/cpu_semantics_test.cpp" "tests/CMakeFiles/sefi_tests.dir/sim/cpu_semantics_test.cpp.o" "gcc" "tests/CMakeFiles/sefi_tests.dir/sim/cpu_semantics_test.cpp.o.d"
  "/root/repo/tests/sim/devices_test.cpp" "tests/CMakeFiles/sefi_tests.dir/sim/devices_test.cpp.o" "gcc" "tests/CMakeFiles/sefi_tests.dir/sim/devices_test.cpp.o.d"
  "/root/repo/tests/sim/machine_test.cpp" "tests/CMakeFiles/sefi_tests.dir/sim/machine_test.cpp.o" "gcc" "tests/CMakeFiles/sefi_tests.dir/sim/machine_test.cpp.o.d"
  "/root/repo/tests/sim/snapshot_test.cpp" "tests/CMakeFiles/sefi_tests.dir/sim/snapshot_test.cpp.o" "gcc" "tests/CMakeFiles/sefi_tests.dir/sim/snapshot_test.cpp.o.d"
  "/root/repo/tests/sim/tracer_test.cpp" "tests/CMakeFiles/sefi_tests.dir/sim/tracer_test.cpp.o" "gcc" "tests/CMakeFiles/sefi_tests.dir/sim/tracer_test.cpp.o.d"
  "/root/repo/tests/stats/confidence_test.cpp" "tests/CMakeFiles/sefi_tests.dir/stats/confidence_test.cpp.o" "gcc" "tests/CMakeFiles/sefi_tests.dir/stats/confidence_test.cpp.o.d"
  "/root/repo/tests/stats/fit_test.cpp" "tests/CMakeFiles/sefi_tests.dir/stats/fit_test.cpp.o" "gcc" "tests/CMakeFiles/sefi_tests.dir/stats/fit_test.cpp.o.d"
  "/root/repo/tests/support/bits_test.cpp" "tests/CMakeFiles/sefi_tests.dir/support/bits_test.cpp.o" "gcc" "tests/CMakeFiles/sefi_tests.dir/support/bits_test.cpp.o.d"
  "/root/repo/tests/support/hash_test.cpp" "tests/CMakeFiles/sefi_tests.dir/support/hash_test.cpp.o" "gcc" "tests/CMakeFiles/sefi_tests.dir/support/hash_test.cpp.o.d"
  "/root/repo/tests/support/rng_test.cpp" "tests/CMakeFiles/sefi_tests.dir/support/rng_test.cpp.o" "gcc" "tests/CMakeFiles/sefi_tests.dir/support/rng_test.cpp.o.d"
  "/root/repo/tests/support/strings_test.cpp" "tests/CMakeFiles/sefi_tests.dir/support/strings_test.cpp.o" "gcc" "tests/CMakeFiles/sefi_tests.dir/support/strings_test.cpp.o.d"
  "/root/repo/tests/workloads/workload_test.cpp" "tests/CMakeFiles/sefi_tests.dir/workloads/workload_test.cpp.o" "gcc" "tests/CMakeFiles/sefi_tests.dir/workloads/workload_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/sefi_support.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/sefi_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/sefi_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/microarch/CMakeFiles/sefi_microarch.dir/DependInfo.cmake"
  "/root/repo/build/src/kernel/CMakeFiles/sefi_kernel.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/sefi_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/sefi_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/faultinject/CMakeFiles/sefi_fi.dir/DependInfo.cmake"
  "/root/repo/build/src/beam/CMakeFiles/sefi_beam.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/sefi_core.dir/DependInfo.cmake"
  "/root/repo/build/src/report/CMakeFiles/sefi_report.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
