file(REMOVE_RECURSE
  "CMakeFiles/fig9_sdc_appcrash_comparison.dir/fig9_sdc_appcrash_comparison.cpp.o"
  "CMakeFiles/fig9_sdc_appcrash_comparison.dir/fig9_sdc_appcrash_comparison.cpp.o.d"
  "fig9_sdc_appcrash_comparison"
  "fig9_sdc_appcrash_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_sdc_appcrash_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
