# Empty dependencies file for fig9_sdc_appcrash_comparison.
# This may be replaced when dependencies are built.
