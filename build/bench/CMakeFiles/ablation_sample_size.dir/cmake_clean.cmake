file(REMOVE_RECURSE
  "CMakeFiles/ablation_sample_size.dir/ablation_sample_size.cpp.o"
  "CMakeFiles/ablation_sample_size.dir/ablation_sample_size.cpp.o.d"
  "ablation_sample_size"
  "ablation_sample_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_sample_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
