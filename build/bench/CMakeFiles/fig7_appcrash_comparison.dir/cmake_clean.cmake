file(REMOVE_RECURSE
  "CMakeFiles/fig7_appcrash_comparison.dir/fig7_appcrash_comparison.cpp.o"
  "CMakeFiles/fig7_appcrash_comparison.dir/fig7_appcrash_comparison.cpp.o.d"
  "fig7_appcrash_comparison"
  "fig7_appcrash_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_appcrash_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
