# Empty compiler generated dependencies file for fig7_appcrash_comparison.
# This may be replaced when dependencies are built.
