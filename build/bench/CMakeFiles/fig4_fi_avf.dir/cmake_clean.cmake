file(REMOVE_RECURSE
  "CMakeFiles/fig4_fi_avf.dir/fig4_fi_avf.cpp.o"
  "CMakeFiles/fig4_fi_avf.dir/fig4_fi_avf.cpp.o.d"
  "fig4_fi_avf"
  "fig4_fi_avf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_fi_avf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
