# Empty dependencies file for fig4_fi_avf.
# This may be replaced when dependencies are built.
