# Empty dependencies file for fig6_sdc_comparison.
# This may be replaced when dependencies are built.
