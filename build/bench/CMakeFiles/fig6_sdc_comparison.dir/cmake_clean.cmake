file(REMOVE_RECURSE
  "CMakeFiles/fig6_sdc_comparison.dir/fig6_sdc_comparison.cpp.o"
  "CMakeFiles/fig6_sdc_comparison.dir/fig6_sdc_comparison.cpp.o.d"
  "fig6_sdc_comparison"
  "fig6_sdc_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_sdc_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
