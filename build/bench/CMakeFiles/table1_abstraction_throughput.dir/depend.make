# Empty dependencies file for table1_abstraction_throughput.
# This may be replaced when dependencies are built.
