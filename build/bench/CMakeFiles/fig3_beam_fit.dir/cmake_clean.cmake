file(REMOVE_RECURSE
  "CMakeFiles/fig3_beam_fit.dir/fig3_beam_fit.cpp.o"
  "CMakeFiles/fig3_beam_fit.dir/fig3_beam_fit.cpp.o.d"
  "fig3_beam_fit"
  "fig3_beam_fit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_beam_fit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
