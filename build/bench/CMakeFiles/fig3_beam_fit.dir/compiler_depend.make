# Empty compiler generated dependencies file for fig3_beam_fit.
# This may be replaced when dependencies are built.
