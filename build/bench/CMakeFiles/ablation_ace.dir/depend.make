# Empty dependencies file for ablation_ace.
# This may be replaced when dependencies are built.
