file(REMOVE_RECURSE
  "CMakeFiles/ablation_ace.dir/ablation_ace.cpp.o"
  "CMakeFiles/ablation_ace.dir/ablation_ace.cpp.o.d"
  "ablation_ace"
  "ablation_ace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_ace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
