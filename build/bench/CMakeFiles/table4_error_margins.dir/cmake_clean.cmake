file(REMOVE_RECURSE
  "CMakeFiles/table4_error_margins.dir/table4_error_margins.cpp.o"
  "CMakeFiles/table4_error_margins.dir/table4_error_margins.cpp.o.d"
  "table4_error_margins"
  "table4_error_margins.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_error_margins.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
