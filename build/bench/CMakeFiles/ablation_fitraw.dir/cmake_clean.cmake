file(REMOVE_RECURSE
  "CMakeFiles/ablation_fitraw.dir/ablation_fitraw.cpp.o"
  "CMakeFiles/ablation_fitraw.dir/ablation_fitraw.cpp.o.d"
  "ablation_fitraw"
  "ablation_fitraw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_fitraw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
