# Empty dependencies file for ablation_fitraw.
# This may be replaced when dependencies are built.
