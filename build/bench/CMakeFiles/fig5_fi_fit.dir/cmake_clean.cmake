file(REMOVE_RECURSE
  "CMakeFiles/fig5_fi_fit.dir/fig5_fi_fit.cpp.o"
  "CMakeFiles/fig5_fi_fit.dir/fig5_fi_fit.cpp.o.d"
  "fig5_fi_fit"
  "fig5_fi_fit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_fi_fit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
