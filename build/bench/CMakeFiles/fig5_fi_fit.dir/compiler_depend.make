# Empty compiler generated dependencies file for fig5_fi_fit.
# This may be replaced when dependencies are built.
