
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/table2_setup_attributes.cpp" "bench/CMakeFiles/table2_setup_attributes.dir/table2_setup_attributes.cpp.o" "gcc" "bench/CMakeFiles/table2_setup_attributes.dir/table2_setup_attributes.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/sefi_core.dir/DependInfo.cmake"
  "/root/repo/build/src/report/CMakeFiles/sefi_report.dir/DependInfo.cmake"
  "/root/repo/build/src/faultinject/CMakeFiles/sefi_fi.dir/DependInfo.cmake"
  "/root/repo/build/src/beam/CMakeFiles/sefi_beam.dir/DependInfo.cmake"
  "/root/repo/build/src/microarch/CMakeFiles/sefi_microarch.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/sefi_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/kernel/CMakeFiles/sefi_kernel.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/sefi_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/sefi_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/sefi_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/sefi_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
