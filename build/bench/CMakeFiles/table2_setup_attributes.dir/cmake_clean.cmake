file(REMOVE_RECURSE
  "CMakeFiles/table2_setup_attributes.dir/table2_setup_attributes.cpp.o"
  "CMakeFiles/table2_setup_attributes.dir/table2_setup_attributes.cpp.o.d"
  "table2_setup_attributes"
  "table2_setup_attributes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_setup_attributes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
