# Empty compiler generated dependencies file for ablation_warm_cache.
# This may be replaced when dependencies are built.
