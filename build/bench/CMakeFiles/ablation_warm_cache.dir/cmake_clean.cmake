file(REMOVE_RECURSE
  "CMakeFiles/ablation_warm_cache.dir/ablation_warm_cache.cpp.o"
  "CMakeFiles/ablation_warm_cache.dir/ablation_warm_cache.cpp.o.d"
  "ablation_warm_cache"
  "ablation_warm_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_warm_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
