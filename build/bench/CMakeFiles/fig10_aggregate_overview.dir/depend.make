# Empty dependencies file for fig10_aggregate_overview.
# This may be replaced when dependencies are built.
