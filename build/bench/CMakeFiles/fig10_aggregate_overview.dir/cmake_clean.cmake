file(REMOVE_RECURSE
  "CMakeFiles/fig10_aggregate_overview.dir/fig10_aggregate_overview.cpp.o"
  "CMakeFiles/fig10_aggregate_overview.dir/fig10_aggregate_overview.cpp.o.d"
  "fig10_aggregate_overview"
  "fig10_aggregate_overview.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_aggregate_overview.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
