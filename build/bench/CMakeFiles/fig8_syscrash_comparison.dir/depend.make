# Empty dependencies file for fig8_syscrash_comparison.
# This may be replaced when dependencies are built.
