file(REMOVE_RECURSE
  "CMakeFiles/fig8_syscrash_comparison.dir/fig8_syscrash_comparison.cpp.o"
  "CMakeFiles/fig8_syscrash_comparison.dir/fig8_syscrash_comparison.cpp.o.d"
  "fig8_syscrash_comparison"
  "fig8_syscrash_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_syscrash_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
