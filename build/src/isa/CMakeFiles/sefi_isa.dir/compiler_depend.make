# Empty compiler generated dependencies file for sefi_isa.
# This may be replaced when dependencies are built.
