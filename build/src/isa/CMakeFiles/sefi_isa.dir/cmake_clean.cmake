file(REMOVE_RECURSE
  "CMakeFiles/sefi_isa.dir/src/assembler.cpp.o"
  "CMakeFiles/sefi_isa.dir/src/assembler.cpp.o.d"
  "CMakeFiles/sefi_isa.dir/src/disasm.cpp.o"
  "CMakeFiles/sefi_isa.dir/src/disasm.cpp.o.d"
  "CMakeFiles/sefi_isa.dir/src/isa.cpp.o"
  "CMakeFiles/sefi_isa.dir/src/isa.cpp.o.d"
  "libsefi_isa.a"
  "libsefi_isa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sefi_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
