file(REMOVE_RECURSE
  "libsefi_isa.a"
)
