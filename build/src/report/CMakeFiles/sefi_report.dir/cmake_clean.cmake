file(REMOVE_RECURSE
  "CMakeFiles/sefi_report.dir/src/render.cpp.o"
  "CMakeFiles/sefi_report.dir/src/render.cpp.o.d"
  "libsefi_report.a"
  "libsefi_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sefi_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
