# Empty dependencies file for sefi_report.
# This may be replaced when dependencies are built.
