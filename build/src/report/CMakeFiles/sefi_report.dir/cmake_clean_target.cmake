file(REMOVE_RECURSE
  "libsefi_report.a"
)
