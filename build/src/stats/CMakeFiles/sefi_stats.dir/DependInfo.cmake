
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stats/src/confidence.cpp" "src/stats/CMakeFiles/sefi_stats.dir/src/confidence.cpp.o" "gcc" "src/stats/CMakeFiles/sefi_stats.dir/src/confidence.cpp.o.d"
  "/root/repo/src/stats/src/fit.cpp" "src/stats/CMakeFiles/sefi_stats.dir/src/fit.cpp.o" "gcc" "src/stats/CMakeFiles/sefi_stats.dir/src/fit.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/sefi_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
