# Empty dependencies file for sefi_stats.
# This may be replaced when dependencies are built.
