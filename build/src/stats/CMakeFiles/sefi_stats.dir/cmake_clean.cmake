file(REMOVE_RECURSE
  "CMakeFiles/sefi_stats.dir/src/confidence.cpp.o"
  "CMakeFiles/sefi_stats.dir/src/confidence.cpp.o.d"
  "CMakeFiles/sefi_stats.dir/src/fit.cpp.o"
  "CMakeFiles/sefi_stats.dir/src/fit.cpp.o.d"
  "libsefi_stats.a"
  "libsefi_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sefi_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
