file(REMOVE_RECURSE
  "libsefi_stats.a"
)
