file(REMOVE_RECURSE
  "CMakeFiles/sefi_fi.dir/src/ace.cpp.o"
  "CMakeFiles/sefi_fi.dir/src/ace.cpp.o.d"
  "CMakeFiles/sefi_fi.dir/src/campaign.cpp.o"
  "CMakeFiles/sefi_fi.dir/src/campaign.cpp.o.d"
  "CMakeFiles/sefi_fi.dir/src/protection.cpp.o"
  "CMakeFiles/sefi_fi.dir/src/protection.cpp.o.d"
  "libsefi_fi.a"
  "libsefi_fi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sefi_fi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
