# Empty dependencies file for sefi_fi.
# This may be replaced when dependencies are built.
