file(REMOVE_RECURSE
  "libsefi_fi.a"
)
