file(REMOVE_RECURSE
  "CMakeFiles/sefi_core.dir/src/lab.cpp.o"
  "CMakeFiles/sefi_core.dir/src/lab.cpp.o.d"
  "CMakeFiles/sefi_core.dir/src/result_cache.cpp.o"
  "CMakeFiles/sefi_core.dir/src/result_cache.cpp.o.d"
  "libsefi_core.a"
  "libsefi_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sefi_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
