# Empty compiler generated dependencies file for sefi_core.
# This may be replaced when dependencies are built.
