file(REMOVE_RECURSE
  "libsefi_core.a"
)
