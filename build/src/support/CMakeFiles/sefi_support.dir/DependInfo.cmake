
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/support/src/bits.cpp" "src/support/CMakeFiles/sefi_support.dir/src/bits.cpp.o" "gcc" "src/support/CMakeFiles/sefi_support.dir/src/bits.cpp.o.d"
  "/root/repo/src/support/src/hash.cpp" "src/support/CMakeFiles/sefi_support.dir/src/hash.cpp.o" "gcc" "src/support/CMakeFiles/sefi_support.dir/src/hash.cpp.o.d"
  "/root/repo/src/support/src/rng.cpp" "src/support/CMakeFiles/sefi_support.dir/src/rng.cpp.o" "gcc" "src/support/CMakeFiles/sefi_support.dir/src/rng.cpp.o.d"
  "/root/repo/src/support/src/strings.cpp" "src/support/CMakeFiles/sefi_support.dir/src/strings.cpp.o" "gcc" "src/support/CMakeFiles/sefi_support.dir/src/strings.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
