file(REMOVE_RECURSE
  "CMakeFiles/sefi_support.dir/src/bits.cpp.o"
  "CMakeFiles/sefi_support.dir/src/bits.cpp.o.d"
  "CMakeFiles/sefi_support.dir/src/hash.cpp.o"
  "CMakeFiles/sefi_support.dir/src/hash.cpp.o.d"
  "CMakeFiles/sefi_support.dir/src/rng.cpp.o"
  "CMakeFiles/sefi_support.dir/src/rng.cpp.o.d"
  "CMakeFiles/sefi_support.dir/src/strings.cpp.o"
  "CMakeFiles/sefi_support.dir/src/strings.cpp.o.d"
  "libsefi_support.a"
  "libsefi_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sefi_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
