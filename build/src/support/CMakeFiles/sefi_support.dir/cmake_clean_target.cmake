file(REMOVE_RECURSE
  "libsefi_support.a"
)
