# Empty dependencies file for sefi_support.
# This may be replaced when dependencies are built.
