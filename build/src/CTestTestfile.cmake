# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("support")
subdirs("isa")
subdirs("sim")
subdirs("microarch")
subdirs("kernel")
subdirs("workloads")
subdirs("stats")
subdirs("faultinject")
subdirs("beam")
subdirs("core")
subdirs("report")
