file(REMOVE_RECURSE
  "libsefi_beam.a"
)
