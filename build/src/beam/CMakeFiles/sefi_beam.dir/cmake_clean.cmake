file(REMOVE_RECURSE
  "CMakeFiles/sefi_beam.dir/src/session.cpp.o"
  "CMakeFiles/sefi_beam.dir/src/session.cpp.o.d"
  "libsefi_beam.a"
  "libsefi_beam.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sefi_beam.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
