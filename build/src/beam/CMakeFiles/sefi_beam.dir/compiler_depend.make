# Empty compiler generated dependencies file for sefi_beam.
# This may be replaced when dependencies are built.
