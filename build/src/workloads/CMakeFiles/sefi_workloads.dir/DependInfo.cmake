
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/src/adpcm.cpp" "src/workloads/CMakeFiles/sefi_workloads.dir/src/adpcm.cpp.o" "gcc" "src/workloads/CMakeFiles/sefi_workloads.dir/src/adpcm.cpp.o.d"
  "/root/repo/src/workloads/src/basicmath.cpp" "src/workloads/CMakeFiles/sefi_workloads.dir/src/basicmath.cpp.o" "gcc" "src/workloads/CMakeFiles/sefi_workloads.dir/src/basicmath.cpp.o.d"
  "/root/repo/src/workloads/src/bitcount.cpp" "src/workloads/CMakeFiles/sefi_workloads.dir/src/bitcount.cpp.o" "gcc" "src/workloads/CMakeFiles/sefi_workloads.dir/src/bitcount.cpp.o.d"
  "/root/repo/src/workloads/src/common.cpp" "src/workloads/CMakeFiles/sefi_workloads.dir/src/common.cpp.o" "gcc" "src/workloads/CMakeFiles/sefi_workloads.dir/src/common.cpp.o.d"
  "/root/repo/src/workloads/src/crc32.cpp" "src/workloads/CMakeFiles/sefi_workloads.dir/src/crc32.cpp.o" "gcc" "src/workloads/CMakeFiles/sefi_workloads.dir/src/crc32.cpp.o.d"
  "/root/repo/src/workloads/src/dijkstra.cpp" "src/workloads/CMakeFiles/sefi_workloads.dir/src/dijkstra.cpp.o" "gcc" "src/workloads/CMakeFiles/sefi_workloads.dir/src/dijkstra.cpp.o.d"
  "/root/repo/src/workloads/src/fft.cpp" "src/workloads/CMakeFiles/sefi_workloads.dir/src/fft.cpp.o" "gcc" "src/workloads/CMakeFiles/sefi_workloads.dir/src/fft.cpp.o.d"
  "/root/repo/src/workloads/src/jpeg.cpp" "src/workloads/CMakeFiles/sefi_workloads.dir/src/jpeg.cpp.o" "gcc" "src/workloads/CMakeFiles/sefi_workloads.dir/src/jpeg.cpp.o.d"
  "/root/repo/src/workloads/src/l1pattern.cpp" "src/workloads/CMakeFiles/sefi_workloads.dir/src/l1pattern.cpp.o" "gcc" "src/workloads/CMakeFiles/sefi_workloads.dir/src/l1pattern.cpp.o.d"
  "/root/repo/src/workloads/src/matmul.cpp" "src/workloads/CMakeFiles/sefi_workloads.dir/src/matmul.cpp.o" "gcc" "src/workloads/CMakeFiles/sefi_workloads.dir/src/matmul.cpp.o.d"
  "/root/repo/src/workloads/src/qsort.cpp" "src/workloads/CMakeFiles/sefi_workloads.dir/src/qsort.cpp.o" "gcc" "src/workloads/CMakeFiles/sefi_workloads.dir/src/qsort.cpp.o.d"
  "/root/repo/src/workloads/src/registry.cpp" "src/workloads/CMakeFiles/sefi_workloads.dir/src/registry.cpp.o" "gcc" "src/workloads/CMakeFiles/sefi_workloads.dir/src/registry.cpp.o.d"
  "/root/repo/src/workloads/src/rijndael.cpp" "src/workloads/CMakeFiles/sefi_workloads.dir/src/rijndael.cpp.o" "gcc" "src/workloads/CMakeFiles/sefi_workloads.dir/src/rijndael.cpp.o.d"
  "/root/repo/src/workloads/src/sha.cpp" "src/workloads/CMakeFiles/sefi_workloads.dir/src/sha.cpp.o" "gcc" "src/workloads/CMakeFiles/sefi_workloads.dir/src/sha.cpp.o.d"
  "/root/repo/src/workloads/src/stringsearch.cpp" "src/workloads/CMakeFiles/sefi_workloads.dir/src/stringsearch.cpp.o" "gcc" "src/workloads/CMakeFiles/sefi_workloads.dir/src/stringsearch.cpp.o.d"
  "/root/repo/src/workloads/src/susan.cpp" "src/workloads/CMakeFiles/sefi_workloads.dir/src/susan.cpp.o" "gcc" "src/workloads/CMakeFiles/sefi_workloads.dir/src/susan.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/isa/CMakeFiles/sefi_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/sefi_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/kernel/CMakeFiles/sefi_kernel.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/sefi_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
