file(REMOVE_RECURSE
  "libsefi_workloads.a"
)
