# Empty dependencies file for sefi_workloads.
# This may be replaced when dependencies are built.
