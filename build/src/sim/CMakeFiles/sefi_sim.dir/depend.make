# Empty dependencies file for sefi_sim.
# This may be replaced when dependencies are built.
