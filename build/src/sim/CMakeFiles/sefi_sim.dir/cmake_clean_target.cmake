file(REMOVE_RECURSE
  "libsefi_sim.a"
)
