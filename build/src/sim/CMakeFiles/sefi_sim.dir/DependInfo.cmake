
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/src/cpu.cpp" "src/sim/CMakeFiles/sefi_sim.dir/src/cpu.cpp.o" "gcc" "src/sim/CMakeFiles/sefi_sim.dir/src/cpu.cpp.o.d"
  "/root/repo/src/sim/src/devices.cpp" "src/sim/CMakeFiles/sefi_sim.dir/src/devices.cpp.o" "gcc" "src/sim/CMakeFiles/sefi_sim.dir/src/devices.cpp.o.d"
  "/root/repo/src/sim/src/functional.cpp" "src/sim/CMakeFiles/sefi_sim.dir/src/functional.cpp.o" "gcc" "src/sim/CMakeFiles/sefi_sim.dir/src/functional.cpp.o.d"
  "/root/repo/src/sim/src/machine.cpp" "src/sim/CMakeFiles/sefi_sim.dir/src/machine.cpp.o" "gcc" "src/sim/CMakeFiles/sefi_sim.dir/src/machine.cpp.o.d"
  "/root/repo/src/sim/src/page.cpp" "src/sim/CMakeFiles/sefi_sim.dir/src/page.cpp.o" "gcc" "src/sim/CMakeFiles/sefi_sim.dir/src/page.cpp.o.d"
  "/root/repo/src/sim/src/phys_mem.cpp" "src/sim/CMakeFiles/sefi_sim.dir/src/phys_mem.cpp.o" "gcc" "src/sim/CMakeFiles/sefi_sim.dir/src/phys_mem.cpp.o.d"
  "/root/repo/src/sim/src/tracer.cpp" "src/sim/CMakeFiles/sefi_sim.dir/src/tracer.cpp.o" "gcc" "src/sim/CMakeFiles/sefi_sim.dir/src/tracer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/isa/CMakeFiles/sefi_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/sefi_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
