file(REMOVE_RECURSE
  "CMakeFiles/sefi_sim.dir/src/cpu.cpp.o"
  "CMakeFiles/sefi_sim.dir/src/cpu.cpp.o.d"
  "CMakeFiles/sefi_sim.dir/src/devices.cpp.o"
  "CMakeFiles/sefi_sim.dir/src/devices.cpp.o.d"
  "CMakeFiles/sefi_sim.dir/src/functional.cpp.o"
  "CMakeFiles/sefi_sim.dir/src/functional.cpp.o.d"
  "CMakeFiles/sefi_sim.dir/src/machine.cpp.o"
  "CMakeFiles/sefi_sim.dir/src/machine.cpp.o.d"
  "CMakeFiles/sefi_sim.dir/src/page.cpp.o"
  "CMakeFiles/sefi_sim.dir/src/page.cpp.o.d"
  "CMakeFiles/sefi_sim.dir/src/phys_mem.cpp.o"
  "CMakeFiles/sefi_sim.dir/src/phys_mem.cpp.o.d"
  "CMakeFiles/sefi_sim.dir/src/tracer.cpp.o"
  "CMakeFiles/sefi_sim.dir/src/tracer.cpp.o.d"
  "libsefi_sim.a"
  "libsefi_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sefi_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
