file(REMOVE_RECURSE
  "CMakeFiles/sefi_kernel.dir/src/kernel.cpp.o"
  "CMakeFiles/sefi_kernel.dir/src/kernel.cpp.o.d"
  "libsefi_kernel.a"
  "libsefi_kernel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sefi_kernel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
