file(REMOVE_RECURSE
  "libsefi_kernel.a"
)
