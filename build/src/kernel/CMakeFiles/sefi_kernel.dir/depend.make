# Empty dependencies file for sefi_kernel.
# This may be replaced when dependencies are built.
