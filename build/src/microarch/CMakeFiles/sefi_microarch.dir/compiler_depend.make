# Empty compiler generated dependencies file for sefi_microarch.
# This may be replaced when dependencies are built.
