file(REMOVE_RECURSE
  "CMakeFiles/sefi_microarch.dir/src/cache.cpp.o"
  "CMakeFiles/sefi_microarch.dir/src/cache.cpp.o.d"
  "CMakeFiles/sefi_microarch.dir/src/detailed.cpp.o"
  "CMakeFiles/sefi_microarch.dir/src/detailed.cpp.o.d"
  "CMakeFiles/sefi_microarch.dir/src/predictor.cpp.o"
  "CMakeFiles/sefi_microarch.dir/src/predictor.cpp.o.d"
  "CMakeFiles/sefi_microarch.dir/src/regfile.cpp.o"
  "CMakeFiles/sefi_microarch.dir/src/regfile.cpp.o.d"
  "CMakeFiles/sefi_microarch.dir/src/tlb.cpp.o"
  "CMakeFiles/sefi_microarch.dir/src/tlb.cpp.o.d"
  "libsefi_microarch.a"
  "libsefi_microarch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sefi_microarch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
