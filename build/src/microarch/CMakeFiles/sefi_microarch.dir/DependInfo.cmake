
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/microarch/src/cache.cpp" "src/microarch/CMakeFiles/sefi_microarch.dir/src/cache.cpp.o" "gcc" "src/microarch/CMakeFiles/sefi_microarch.dir/src/cache.cpp.o.d"
  "/root/repo/src/microarch/src/detailed.cpp" "src/microarch/CMakeFiles/sefi_microarch.dir/src/detailed.cpp.o" "gcc" "src/microarch/CMakeFiles/sefi_microarch.dir/src/detailed.cpp.o.d"
  "/root/repo/src/microarch/src/predictor.cpp" "src/microarch/CMakeFiles/sefi_microarch.dir/src/predictor.cpp.o" "gcc" "src/microarch/CMakeFiles/sefi_microarch.dir/src/predictor.cpp.o.d"
  "/root/repo/src/microarch/src/regfile.cpp" "src/microarch/CMakeFiles/sefi_microarch.dir/src/regfile.cpp.o" "gcc" "src/microarch/CMakeFiles/sefi_microarch.dir/src/regfile.cpp.o.d"
  "/root/repo/src/microarch/src/tlb.cpp" "src/microarch/CMakeFiles/sefi_microarch.dir/src/tlb.cpp.o" "gcc" "src/microarch/CMakeFiles/sefi_microarch.dir/src/tlb.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/sefi_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/sefi_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/sefi_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
