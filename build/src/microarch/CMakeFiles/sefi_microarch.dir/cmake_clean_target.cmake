file(REMOVE_RECURSE
  "libsefi_microarch.a"
)
