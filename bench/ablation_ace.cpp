// Ablation: ACE-style occupancy bounds vs measured fault-injection AVFs.
//
// The paper's §II contrasts ACE analysis (one simulation, conservative)
// with statistical fault injection (many simulations, observed outcomes),
// citing Wang et al. [28] on ACE's over-estimation. This bench reproduces
// that comparison on our stack: the time-averaged valid-entry occupancy
// of each component (an ACE-style upper bound) against the AVF the FI
// campaign actually measures.
#include <cstdio>

#include "bench_common.hpp"
#include "sefi/fi/ace.hpp"
#include "sefi/fi/campaign.hpp"

int main() {
  const auto config = sefi::bench::lab_config();
  sefi::bench::print_campaign_banner(config);
  sefi::core::AssessmentLab lab(config);

  std::printf(
      "ABLATION: occupancy (ACE-style) upper bound vs measured FI AVF, per "
      "component\n\n");
  for (const char* name : {"CRC32", "FFT", "Qsort", "SusanC"}) {
    const auto& w = sefi::workloads::workload_by_name(name);
    const auto occupancy = sefi::fi::measure_occupancy(
        w, config.fi.rig, config.fi.input_seed);
    const auto& fi = lab.run_fi(w);
    std::printf("%s (%llu occupancy samples):\n", name,
                static_cast<unsigned long long>(occupancy.samples));
    std::printf("  %-10s %14s %14s %12s %10s\n", "component", "occupancy %",
                "FI AVF %", "margin ±%", "bound ok");
    for (const auto kind : sefi::microarch::kAllComponents) {
      const double bound = occupancy.component(kind);
      const double avf = fi.component(kind).avf();
      // The slack is the campaign's own re-adjusted error margin, not a
      // hardcoded allowance: the bound holds when the occupancy covers
      // the AVF to within the statistical uncertainty of the estimate.
      const double margin = fi.component(kind).error_margin;
      std::printf("  %-10s %14.1f %14.1f %12.1f %10s\n",
                  sefi::microarch::component_name(kind).c_str(), bound * 100,
                  avf * 100, margin * 100,
                  bound + margin >= avf ? "yes" : "NO");
    }
  }
  std::printf(
      "\n(expected: occupancy bounds the measured AVF from above, often "
      "loosely — the over-estimation\n Wang et al. [28] report for ACE "
      "analyses without detailed lifetime tracking.)\n");
  return 0;
}
