// Hardening tradeoff matrix: mitigation effectiveness vs. runtime cost.
//
// Runs the full 13-benchmark sweep once per protection level
// (SEFI_HARDEN tiers — DESIGN.md §15) through both assessment
// strategies, and emits one machine-readable JSON line per
// (workload, mode) cell:
//
//   {"bench":"hardening_tradeoff","workload":"Qsort","mode":"tmr+cfcss",
//    "runtime_overhead":2.41,"code_growth":3.02,
//    "avf_sdc_mean":0.0213,"avf_detected_mean":0.0087,
//    "fi_fit_sdc":...,"fi_fit_detected":...,"fi_fit_total":...,
//    "fi_detected":13,"beam_fit_sdc":...,"beam_fit_detected":...,
//    "beam_detected":2,
//    "sdc_avf_reduction":0.62,"sdc_fit_reduction":0.64,
//    "beam_sdc_fit_reduction":0.58}
//
// Field semantics:
//   runtime_overhead   hardened golden application-window cycles over
//                      the baseline's (fault-free detailed-model run) —
//                      the price paid on every execution, faults or not
//   code_growth        (original + inserted) / original instructions
//   avf_sdc_mean       mean SDC AVF over the 6 injected components
//   *_reduction        1 - hardened/baseline, present only when the
//                      baseline rate is nonzero (a reduction against a
//                      zero baseline is undefined, not 1.0)
//   fi_detected /      total Detected verdicts (FI: summed over the 6
//   beam_detected      components; beam: per session)
//
// The AVF→FIT conversion uses the *baseline* lab's FIT_raw calibration
// for every mode: FIT_raw is a property of the SRAM (measured by
// beaming the unprotected L1-pattern benchmark), not of the workload
// under test, so hardening must not perturb the yardstick it is
// measured with.
//
// Expected shape (and the acceptance bar for the hardening tentpole):
// tmr+cfcss shows an SDC AVF reduction on every workload, bought with a
// multi-x runtime_overhead — register-file and TLB faults get repaired
// or detected, while L1D data faults that flow through loads reach all
// replicas and stay SDCs (the documented memory coverage gap of
// register-level replication; see DESIGN.md §15).
//
// Knobs: the shared bench environment (SEFI_FAULTS, SEFI_BEAM_RUNS,
// SEFI_SEED, SEFI_THREADS, SEFI_CACHE_DIR). SEFI_HARDEN is ignored —
// this bench owns the mode axis.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "sefi/fi/campaign.hpp"
#include "sefi/harden/harden.hpp"
#include "sefi/workloads/workload.hpp"

namespace {

struct BaselineCell {
  double window_cycles = 0;  ///< golden application-window cycles
  double avf_sdc_mean = 0;
  double fi_fit_sdc = 0;
  double beam_fit_sdc = 0;
};

double mean_avf_sdc(const sefi::fi::WorkloadFiResult& result) {
  double sum = 0;
  for (const auto kind : sefi::microarch::kAllComponents) {
    sum += result.component(kind).avf_sdc();
  }
  return sum / sefi::microarch::kNumComponents;
}

double mean_avf_detected(const sefi::fi::WorkloadFiResult& result) {
  double sum = 0;
  for (const auto kind : sefi::microarch::kAllComponents) {
    sum += result.component(kind).avf_detected();
  }
  return sum / sefi::microarch::kNumComponents;
}

std::uint64_t total_detected(const sefi::fi::WorkloadFiResult& result) {
  std::uint64_t sum = 0;
  for (const auto kind : sefi::microarch::kAllComponents) {
    sum += result.component(kind).counts.detected;
  }
  return sum;
}

/// 1 - hardened/baseline as a printable field, or omitted when the
/// baseline is zero.
void print_reduction(const char* field, double hardened, double baseline) {
  if (baseline > 0) {
    std::printf(",\"%s\":%.4f", field, 1.0 - hardened / baseline);
  }
}

}  // namespace

int main() {
  const sefi::core::LabConfig base = sefi::bench::lab_config();
  sefi::bench::print_campaign_banner(base);

  // Baseline lab first: it owns the FIT_raw calibration and the
  // per-workload baselines every reduction is measured against.
  sefi::core::LabConfig off_config = base;
  off_config.fi.rig.harden = sefi::harden::HardenMode::kOff;
  off_config.beam.harden = sefi::harden::HardenMode::kOff;
  sefi::core::AssessmentLab off_lab(off_config);

  std::printf("calibrating FIT_raw (beaming L1Pattern, unprotected)...\n");
  off_lab.fit_raw_per_bit();

  const auto& workloads = sefi::workloads::all_workloads();
  std::vector<BaselineCell> baselines;

  for (const auto mode : sefi::harden::kAllHardenModes) {
    const std::string mode_name = sefi::harden::harden_mode_name(mode);
    sefi::core::LabConfig config = base;
    config.fi.rig.harden = mode;
    config.beam.harden = mode;
    // One lab per mode; all share the disk cache, and campaign identity
    // (fingerprint v8) keeps the modes' entries apart.
    sefi::core::AssessmentLab own_lab(config);
    sefi::core::AssessmentLab& lab =
        mode == sefi::harden::HardenMode::kOff ? off_lab : own_lab;

    for (std::size_t i = 0; i < workloads.size(); ++i) {
      const auto* w = workloads[i];
      std::fprintf(stderr, "[%s] %s...\n", mode_name.c_str(),
                   w->info().name.c_str());

      // Static cost: instruction growth from the transform accounting.
      sefi::harden::HardenReport report;
      sefi::harden::apply(w->build(config.fi.input_seed), mode, {}, &report);
      const double code_growth =
          report.original_instructions == 0
              ? 1.0
              : static_cast<double>(report.original_instructions +
                                    report.inserted_instructions) /
                    static_cast<double>(report.original_instructions);

      // Dynamic cost: fault-free golden window on the detailed model —
      // the same golden every injection replays from.
      sefi::fi::InjectionRig rig(*w, config.fi.rig, config.fi.input_seed);
      const double window_cycles = static_cast<double>(
          rig.golden().end_cycle - rig.golden().spawn_cycle);

      // Effectiveness: both assessment strategies, baseline calibration.
      const sefi::fi::WorkloadFiResult& fi = lab.run_fi(*w);
      const sefi::beam::BeamResult& beam = lab.run_beam(*w);
      const sefi::core::FiFitRates fit = off_lab.convert_to_fit(fi);

      if (mode == sefi::harden::HardenMode::kOff) {
        baselines.push_back({window_cycles, mean_avf_sdc(fi), fit.sdc,
                             beam.fit_sdc()});
      }
      const BaselineCell& bl = baselines[i];

      std::printf(
          "{\"bench\":\"hardening_tradeoff\",\"workload\":\"%s\","
          "\"mode\":\"%s\",\"runtime_overhead\":%.3f,"
          "\"code_growth\":%.3f,\"avf_sdc_mean\":%.5f,"
          "\"avf_detected_mean\":%.5f,\"fi_fit_sdc\":%.4f,"
          "\"fi_fit_detected\":%.4f,\"fi_fit_total\":%.4f,"
          "\"fi_detected\":%llu,\"beam_fit_sdc\":%.4f,"
          "\"beam_fit_detected\":%.4f,\"beam_detected\":%llu",
          w->info().name.c_str(), mode_name.c_str(),
          bl.window_cycles > 0 ? window_cycles / bl.window_cycles : 0.0,
          code_growth, mean_avf_sdc(fi), mean_avf_detected(fi), fit.sdc,
          fit.detected, fit.total(),
          static_cast<unsigned long long>(total_detected(fi)),
          beam.fit_sdc(), beam.fit_detected(),
          static_cast<unsigned long long>(beam.detected));
      print_reduction("sdc_avf_reduction", mean_avf_sdc(fi), bl.avf_sdc_mean);
      print_reduction("sdc_fit_reduction", fit.sdc, bl.fi_fit_sdc);
      print_reduction("beam_sdc_fit_reduction", beam.fit_sdc(),
                      bl.beam_fit_sdc);
      std::printf("}\n");
      std::fflush(stdout);
    }
    if (mode != sefi::harden::HardenMode::kOff) {
      sefi::bench::print_cache_telemetry(own_lab);
    }
  }
  sefi::bench::print_cache_telemetry(off_lab);
  return 0;
}
