// Ablation: statistical sample sizing (Leveugle, §IV-C).
//
// Shows the error-margin/sample-size trade-off behind the paper's choice
// of 1,000 faults per component, and the re-adjustment step that tightens
// the margin once the campaign's AVF estimate is known (Table IV).
#include <cstdio>

#include "bench_common.hpp"
#include "sefi/stats/confidence.hpp"

int main() {
  const double population = 1e12;  // bits x cycles, effectively infinite

  std::printf("ABLATION: Leveugle error margin vs sample size (99%% conf.)\n");
  std::printf("%-10s %-14s %-22s %-22s\n", "faults", "margin(p=0.5)",
              "re-adjusted (AVF=5%)", "re-adjusted (AVF=30%)");
  for (const std::uint64_t n :
       {100ull, 250ull, 500ull, 1000ull, 2000ull, 5000ull}) {
    const double base =
        sefi::stats::leveugle_error_margin(population, n, 0.99, 0.5);
    const double tight05 =
        sefi::stats::readjusted_error_margin(population, n, 0.99, 0.05);
    const double tight30 =
        sefi::stats::readjusted_error_margin(population, n, 0.99, 0.30);
    std::printf("%-10llu %-14.4f %-22.4f %-22.4f\n",
                static_cast<unsigned long long>(n), base, tight05, tight30);
  }

  std::printf("\nSample size needed for a target margin (p = 0.5):\n");
  std::printf("%-10s %-12s\n", "margin", "faults");
  for (const double margin : {0.10, 0.05, 0.04, 0.02, 0.01}) {
    std::printf("%-10.2f %-12llu\n", margin,
                static_cast<unsigned long long>(
                    sefi::stats::leveugle_sample_size(population, margin,
                                                      0.99)));
  }
  std::printf(
      "(paper: 1000 faults -> 4%% margin at 99%% confidence; re-adjusted "
      "margins span 1.7%%-4.0%%, Table IV.)\n");
  return 0;
}
