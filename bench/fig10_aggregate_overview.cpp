// Fig. 10: aggregate comparison of beam and fault-injection FIT rates —
// the paper's closing "sandwich": fault injection under-estimates, beam
// over-estimates, the real FIT sits between, and the gap stays within
// about one order of magnitude.
#include <cstdio>

#include "bench_common.hpp"
#include "sefi/report/render.hpp"

int main() {
  const auto config = sefi::bench::lab_config();
  sefi::bench::print_campaign_banner(config);
  sefi::core::AssessmentLab lab(config);
  const auto sweep = lab.compare_all();
  const auto agg = sefi::core::AssessmentLab::aggregate(sweep);
  std::printf("%s", sefi::report::render_fig10(agg).c_str());
  std::printf(
      "\n(paper: SDC averages nearly coincide; adding Application Crashes "
      "widens the gap to 4.3x and adding\n System Crashes to 10.9x — still "
      "within one order of magnitude, which is the headline claim.)\n");
  sefi::bench::print_cache_telemetry(lab);
  return 0;
}
