// Shared setup for the reproduction bench binaries.
//
// Every table/figure binary builds its AssessmentLab through here so the
// whole suite shares one campaign configuration and one on-disk result
// cache: the first binary that needs the 13-benchmark sweep pays for it,
// the rest replay it. Knobs (environment):
//   SEFI_FAULTS      faults per component per benchmark (default 150;
//                    the paper used 1000)
//   SEFI_BEAM_RUNS   beam executions per benchmark session (default 600)
//   SEFI_SEED        campaign seed override
//   SEFI_THREADS     campaign workers (default 0 = hardware concurrency;
//                    never changes results, only wall-clock)
//   SEFI_CHECKPOINTS checkpoint-ladder rungs per injection rig
//                    (default 8; never changes results)
//   SEFI_CACHE_DIR   result cache directory (default ".sefi-cache";
//                    set to empty to disable)
#pragma once

#include <cstdio>
#include <cstdlib>

#include "sefi/core/lab.hpp"
#include "sefi/exec/parallel.hpp"

namespace sefi::bench {

inline void ensure_default_cache() {
  if (std::getenv("SEFI_CACHE_DIR") == nullptr) {
    ::setenv("SEFI_CACHE_DIR", ".sefi-cache", 0);
  }
}

inline core::LabConfig lab_config() {
  ensure_default_cache();
  return core::LabConfig::from_env();
}

/// One machine-readable JSON line with the lab's cache counters, so a
/// bench run records whether its numbers came from fresh campaigns or
/// replayed cache entries (and whether any entry was corrupt). Printed
/// by every figure bench after its sweep.
inline void print_cache_telemetry(const core::AssessmentLab& lab) {
  const core::ResultCache::Telemetry t = lab.cache_telemetry();
  std::printf(
      "{\"bench\":\"cache_telemetry\",\"memo_hits\":%llu,"
      "\"disk_hits\":%llu,\"misses\":%llu,\"stores\":%llu,"
      "\"store_failures\":%llu,\"corrupt_quarantined\":%llu,"
      "\"version_skew\":%llu,\"bytes_read\":%llu,\"bytes_written\":%llu}\n",
      static_cast<unsigned long long>(t.memo_hits),
      static_cast<unsigned long long>(t.disk_hits),
      static_cast<unsigned long long>(t.misses),
      static_cast<unsigned long long>(t.stores),
      static_cast<unsigned long long>(t.store_failures),
      static_cast<unsigned long long>(t.corrupt_quarantined),
      static_cast<unsigned long long>(t.version_skew),
      static_cast<unsigned long long>(t.bytes_read),
      static_cast<unsigned long long>(t.bytes_written));
  // Companion line: what the campaign supervisor did (retries, harness
  // errors, watchdog hits, journal replays). All-zero on a healthy run,
  // so any nonzero field in a CI log is a flag worth reading.
  const core::AssessmentLab::SupervisorTelemetry s =
      lab.supervisor_telemetry();
  std::printf(
      "{\"bench\":\"supervisor_telemetry\",\"tasks_run\":%llu,"
      "\"journal_replayed\":%llu,\"retries\":%llu,\"harness_errors\":%llu,"
      "\"watchdog_hits\":%llu,\"cancelled_tasks\":%llu}\n",
      static_cast<unsigned long long>(s.tasks_run),
      static_cast<unsigned long long>(s.journal_replayed),
      static_cast<unsigned long long>(s.retries),
      static_cast<unsigned long long>(s.harness_errors),
      static_cast<unsigned long long>(s.watchdog_hits),
      static_cast<unsigned long long>(s.cancelled_tasks));
}

inline void print_campaign_banner(const core::LabConfig& config) {
  std::printf(
      "[sefi] campaign: %llu faults/component (paper: 1000), %llu beam "
      "runs/benchmark, %zu threads, %llu checkpoints, cache dir '%s'\n\n",
      static_cast<unsigned long long>(config.fi.faults_per_component),
      static_cast<unsigned long long>(config.beam.runs),
      exec::resolve_threads(config.fi.threads, SIZE_MAX),
      static_cast<unsigned long long>(config.fi.checkpoints),
      std::getenv("SEFI_CACHE_DIR"));
}

}  // namespace sefi::bench
