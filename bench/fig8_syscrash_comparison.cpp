// Fig. 8: System Crash FIT comparison between beam and fault injection.
#include <cstdio>

#include "bench_common.hpp"
#include "sefi/report/render.hpp"

int main() {
  const auto config = sefi::bench::lab_config();
  sefi::bench::print_campaign_banner(config);
  sefi::core::AssessmentLab lab(config);
  const auto sweep = lab.compare_all();
  std::printf(
      "%s",
      sefi::report::render_fold_figure(
          "FIG 8: System Crash FIT comparison, beam vs fault injection",
          "sys", sweep)
          .c_str());
  std::printf(
      "(paper: beam always higher, 9x (CRC32) to 287x (MatMul); the "
      "smallest-input benchmarks leave kernel state\n cache-resident and "
      "beam-exposed, and the platform's un-modeled interfaces add an "
      "intrinsic crash floor.)\n");
  sefi::bench::print_cache_telemetry(lab);
  return 0;
}
