// Fig. 6: SDC FIT comparison between (simulated) beam experiments and
// fault injection — the paper's fold-difference chart.
#include <cstdio>

#include "bench_common.hpp"
#include "sefi/report/render.hpp"

int main() {
  const auto config = sefi::bench::lab_config();
  sefi::bench::print_campaign_banner(config);
  sefi::core::AssessmentLab lab(config);
  const auto sweep = lab.compare_all();
  std::printf("%s",
              sefi::report::render_fold_figure(
                  "FIG 6: SDC FIT comparison, beam vs fault injection",
                  "sdc", sweep)
                  .c_str());
  std::printf(
      "(paper: 10 of 13 benchmarks within 4x, 7 within 2x; the largest "
      "gaps — MatMul, StringSearch, CRC32 —\n occur where absolute SDC "
      "rates are tiny and within statistical error.)\n");
  sefi::bench::print_cache_telemetry(lab);
  return 0;
}
