// Table IV: min/max/avg re-adjusted statistical error margin per
// component across the 13-benchmark fault-injection sweep (§IV-C).
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "sefi/report/render.hpp"

int main() {
  const auto config = sefi::bench::lab_config();
  sefi::bench::print_campaign_banner(config);
  sefi::core::AssessmentLab lab(config);

  std::vector<sefi::fi::WorkloadFiResult> sweep;
  for (const auto* w : sefi::workloads::all_workloads()) {
    std::printf("injecting %s...\n", w->info().name.c_str());
    sweep.push_back(lab.run_fi(*w));
  }
  std::printf("\n%s", sefi::report::render_table4(sweep).c_str());
  std::printf(
      "(paper, 1000 faults/component: margins between 1.7%% and 4.0%% at "
      "99%% confidence)\n");
  return 0;
}
