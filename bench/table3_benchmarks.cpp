// Table III: benchmark inputs and characteristics.
#include <cstdio>

#include "bench_common.hpp"
#include "sefi/kernel/kernel.hpp"
#include "sefi/microarch/detailed.hpp"
#include "sefi/report/render.hpp"
#include "sefi/support/strings.hpp"

int main() {
  std::printf("%s", sefi::report::render_table3().c_str());

  // Extra column the paper discusses in prose: per-benchmark run size on
  // the detailed model (drives cache/kernel residency effects).
  std::printf("\nMeasured run sizes (detailed model, campaign geometry):\n");
  const auto uarch = sefi::core::scaled_uarch();
  for (const auto* w : sefi::workloads::all_workloads()) {
    sefi::sim::Machine m = sefi::microarch::make_detailed_machine(uarch);
    sefi::kernel::install_system(m, sefi::kernel::build_kernel(),
                                 w->build(sefi::workloads::kDefaultInputSeed),
                                 sefi::workloads::kWorkloadStackTop);
    m.boot();
    m.run(500'000'000);
    std::printf("  %-14s %9llu instructions %10llu cycles  image %5u B\n",
                w->info().name.c_str(),
                static_cast<unsigned long long>(m.cpu().instructions()),
                static_cast<unsigned long long>(m.cpu().cycles()),
                w->build(sefi::workloads::kDefaultInputSeed).size());
  }
  return 0;
}
