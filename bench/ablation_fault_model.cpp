// Ablation: single-bit vs double-bit (multi-cell-upset) fault model.
//
// The paper lists the simplified single-bit model as a source of FI
// under-estimation (§II-B, Fig. 1): real particles in dense technologies
// upset adjacent cells together. Re-running the campaign with two-bit
// flips quantifies how much AVF the single-bit model leaves on the table.
#include <cstdio>

#include "bench_common.hpp"
#include "sefi/fi/campaign.hpp"

int main() {
  const auto config = sefi::bench::lab_config();
  sefi::bench::print_campaign_banner(config);

  std::printf("ABLATION: AVF under single-bit vs double-bit transients\n");
  std::printf("%-14s %16s %16s %10s\n", "Benchmark", "AVF single (%)",
              "AVF double (%)", "ratio");
  for (const char* name : {"CRC32", "FFT", "Qsort", "SusanC"}) {
    const auto& w = sefi::workloads::workload_by_name(name);
    sefi::fi::CampaignConfig single = config.fi;
    sefi::fi::CampaignConfig twin = config.fi;
    twin.fault_model = sefi::fi::FaultModel::kDoubleBit;
    const auto single_result = sefi::fi::run_fi_campaign(w, single);
    const auto twin_result = sefi::fi::run_fi_campaign(w, twin);
    // Aggregate AVF weighted by component size (bit-strike probability).
    auto weighted_avf = [](const sefi::fi::WorkloadFiResult& r) {
      double num = 0, den = 0;
      for (const auto& comp : r.components) {
        num += comp.avf() * static_cast<double>(comp.bits);
        den += static_cast<double>(comp.bits);
      }
      return num / den;
    };
    const double a = weighted_avf(single_result);
    const double b = weighted_avf(twin_result);
    std::printf("%-14s %16.2f %16.2f %10.2f\n", name, a * 100, b * 100,
                a > 0 ? b / a : 0.0);
  }
  std::printf(
      "\n(expected: the double-bit model reports equal or higher AVFs — the "
      "single-bit campaign's\n under-estimation component in the paper's "
      "Fig. 1 taxonomy.)\n");
  return 0;
}
