// Fig. 3: beam FIT rates (SDC / Application Crash / System Crash) for the
// 13 benchmarks.
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "sefi/report/render.hpp"

int main() {
  const auto config = sefi::bench::lab_config();
  sefi::bench::print_campaign_banner(config);
  sefi::core::AssessmentLab lab(config);

  std::vector<sefi::beam::BeamResult> results;
  for (const auto* w : sefi::workloads::all_workloads()) {
    std::printf("beaming %s...\n", w->info().name.c_str());
    results.push_back(lab.run_beam(*w));
  }
  std::printf("\n%s", sefi::report::render_fig3(results).c_str());
  std::printf(
      "(paper shape: System Crash dominates for all but FFT and Qsort, "
      "whose Application Crash rate is higher;\n small-input benchmarks — "
      "Dijkstra, MatMul, StringSearch, Susans — show the highest System "
      "Crash FIT.)\n");
  sefi::bench::print_cache_telemetry(lab);
  return 0;
}
