// Ablation: protection-mechanism evaluation (paper §VII motivation).
//
// Re-runs the fault-injection campaign under three protection policies —
// unprotected COTS (the paper's device), the classic commercial mix
// (parity L1s + SECDED L2), and SECDED everywhere — and converts the
// AVFs to FIT. This is the decision the paper says its methodology
// should inform, made quantitative.
#include <cstdio>

#include "bench_common.hpp"
#include "sefi/fi/protection.hpp"
#include "sefi/stats/fit.hpp"

int main() {
  const auto config = sefi::bench::lab_config();
  sefi::bench::print_campaign_banner(config);
  sefi::core::AssessmentLab lab(config);
  const double fit_raw = lab.fit_raw_per_bit();

  struct Policy {
    const char* name;
    sefi::fi::ProtectionPolicy policy;
  };
  const Policy policies[] = {
      {"none (COTS)", sefi::fi::ProtectionPolicy::none()},
      {"parity L1 + SECDED L2", sefi::fi::ProtectionPolicy::commercial()},
      {"SECDED everywhere", sefi::fi::ProtectionPolicy::full_secded()},
  };

  std::printf(
      "ABLATION: predicted FI FIT under protection policies (FIT_raw = "
      "%.2e)\n\n", fit_raw);
  for (const char* name : {"FFT", "Qsort", "RijndaelE"}) {
    const auto& w = sefi::workloads::workload_by_name(name);
    std::printf("%s:\n  %-24s %10s %10s %10s %10s\n", name, "policy",
                "SDC", "AppCr", "SysCr", "total");
    for (const Policy& p : policies) {
      sefi::fi::CampaignConfig campaign = config.fi;
      campaign.rig.protection = p.policy;
      const auto result = sefi::fi::run_fi_campaign(w, campaign);
      double sdc = 0, app = 0, sys = 0;
      for (const auto& comp : result.components) {
        const auto bits = static_cast<double>(comp.bits);
        sdc += sefi::stats::fit_from_avf(fit_raw, bits, comp.avf_sdc());
        app += sefi::stats::fit_from_avf(fit_raw, bits,
                                         comp.avf_app_crash());
        sys += sefi::stats::fit_from_avf(fit_raw, bits,
                                         comp.avf_sys_crash());
      }
      std::printf("  %-24s %10.3f %10.3f %10.3f %10.3f\n", p.name, sdc, app,
                  sys, sdc + app + sys);
    }
  }
  std::printf(
      "\n(expected: SECDED eliminates the single-bit FIT entirely. Parity "
      "is the classic trade, not a win:\n it converts silent corruptions "
      "into detected-uncorrectable machine checks — SDC collapses while\n "
      "SysCrash grows by the dirty-line DUE rate. Exactly the "
      "SDC-vs-availability decision the paper says\n these assessments "
      "must inform.)\n");
  return 0;
}
