// Ablation: warm vs cold machine between beam runs (paper §VI).
//
// The paper explains the System-Crash asymmetry partly by setup
// difference: fault injection resets the caches every experiment, while
// the beam keeps executing on warm hardware where kernel code and data
// stay cache-resident and exposed. Power-cycling the simulated machine
// between runs removes that exposure and should depress the System-Crash
// rate — especially for small-footprint benchmarks.
#include <cstdio>

#include "bench_common.hpp"
#include "sefi/beam/session.hpp"

int main() {
  const auto config = sefi::bench::lab_config();
  sefi::bench::print_campaign_banner(config);

  std::printf(
      "ABLATION: warm session (paper's beam) vs power-cycle-per-run "
      "(FI-like cold caches)\n");
  std::printf("%-14s %14s %14s %14s %14s\n", "Benchmark", "Sys FIT warm",
              "Sys FIT cold", "SDC FIT warm", "SDC FIT cold");
  for (const char* name : {"SusanC", "StringSearch", "Dijkstra", "CRC32"}) {
    const auto& w = sefi::workloads::workload_by_name(name);
    sefi::beam::BeamConfig warm = config.beam;
    // Isolate the cache-residency effect from the platform floor.
    warm.platform = sefi::beam::PlatformModel::none();
    sefi::beam::BeamConfig cold = warm;
    cold.power_cycle_every_run = true;
    const auto warm_result = sefi::beam::run_beam_session(w, warm);
    const auto cold_result = sefi::beam::run_beam_session(w, cold);
    std::printf("%-14s %14.2f %14.2f %14.2f %14.2f\n", name,
                warm_result.fit_sys_crash(), cold_result.fit_sys_crash(),
                warm_result.fit_sdc(), cold_result.fit_sdc());
  }
  std::printf(
      "\n(expected: the warm session's System-Crash FIT exceeds the cold "
      "one's for small-input benchmarks,\n because idle cache space holds "
      "live kernel state only when the machine stays up between runs.)\n");
  return 0;
}
