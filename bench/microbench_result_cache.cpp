// Result-cache storage-layer throughput tracker.
//
// The cache is the serving layer for every bench binary: a cached
// paper sweep is 13 workloads x 2 campaign kinds re-read by ~20
// processes, so store/load cost and the checksum overhead should stay
// measurable across commits. Emits one machine-readable JSON line per
// tier:
//
//   {"bench":"result_cache","tier":"disk","entries":512,
//    "store_wall_seconds":...,"stores_per_sec":...,
//    "load_wall_seconds":...,"loads_per_sec":...,
//    "bytes_written":...,"bytes_read":...,"corrupt_quarantined":0}
//
// The disk tier stores N synthetic FI results then loads them from a
// *fresh* cache instance (cold memo, every load pays read + checksum +
// parse). The memo tier re-loads the same keys from the now-warm
// instance (every load is a map hit). A final corrupt cell truncates
// every entry mid-file and re-loads, timing the quarantine path — and
// asserting not one torn entry parses.
//
// Knobs: argv[1] entry count (default 512).
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "sefi/core/result_cache.hpp"

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

sefi::fi::WorkloadFiResult synthetic_result(std::uint64_t i) {
  sefi::fi::WorkloadFiResult result;
  result.workload = "Synthetic" + std::to_string(i);
  for (std::size_t c = 0; c < result.components.size(); ++c) {
    auto& comp = result.components[c];
    comp.component = static_cast<sefi::microarch::ComponentKind>(c);
    comp.bits = 4096 + i;
    comp.counts = {100 + i, i % 7, i % 5, i % 3};
    comp.error_margin = 0.01;
  }
  return result;
}

void emit(const char* tier, std::uint64_t entries, double store_wall,
          double load_wall, const sefi::core::ResultCache::Telemetry& t) {
  std::printf(
      "{\"bench\":\"result_cache\",\"tier\":\"%s\",\"entries\":%llu,"
      "\"store_wall_seconds\":%.4f,\"stores_per_sec\":%.1f,"
      "\"load_wall_seconds\":%.4f,\"loads_per_sec\":%.1f,"
      "\"bytes_written\":%llu,\"bytes_read\":%llu,"
      "\"corrupt_quarantined\":%llu}\n",
      tier, static_cast<unsigned long long>(entries), store_wall,
      store_wall > 0 ? static_cast<double>(entries) / store_wall : 0.0,
      load_wall,
      load_wall > 0 ? static_cast<double>(entries) / load_wall : 0.0,
      static_cast<unsigned long long>(t.bytes_written),
      static_cast<unsigned long long>(t.bytes_read),
      static_cast<unsigned long long>(t.corrupt_quarantined));
  std::fflush(stdout);
}

}  // namespace

int main(int argc, char** argv) {
  const std::uint64_t entries =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 512;
  const std::string dir =
      (std::filesystem::temp_directory_path() / "sefi-cache-bench").string();
  std::filesystem::remove_all(dir);

  std::vector<std::string> keys;
  keys.reserve(entries);
  for (std::uint64_t i = 0; i < entries; ++i) {
    keys.push_back(sefi::core::ResultCache::make_key(
        "fi", 0xBE7C000000000000ULL + i, "Synthetic" + std::to_string(i)));
  }

  // Disk tier: sealed stores, then cold loads from a fresh instance.
  const sefi::core::ResultCache writer(dir);
  auto start = Clock::now();
  for (std::uint64_t i = 0; i < entries; ++i) {
    writer.store_fi(keys[i], synthetic_result(i));
  }
  const double store_wall = seconds_since(start);

  const sefi::core::ResultCache cold_reader(dir);
  start = Clock::now();
  for (const std::string& key : keys) {
    if (cold_reader.load_fi(key) == nullptr) {
      std::fprintf(stderr, "FATAL: cold load missed %s\n", key.c_str());
      return 1;
    }
  }
  const double cold_load_wall = seconds_since(start);
  {
    auto t = cold_reader.telemetry();
    t.bytes_written = writer.telemetry().bytes_written;
    emit("disk", entries, store_wall, cold_load_wall, t);
  }

  // Memo tier: the same loads again on the now-warm instance.
  start = Clock::now();
  for (const std::string& key : keys) {
    if (cold_reader.load_fi(key) == nullptr) return 1;
  }
  emit("memo", entries, 0.0, seconds_since(start),
       sefi::core::ResultCache::Telemetry{});

  // Corrupt cell: truncate every entry mid-file, then load through a
  // fresh instance — each must read as a quarantined miss, never parse.
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    const auto size = std::filesystem::file_size(entry.path());
    std::filesystem::resize_file(entry.path(), size / 2);
  }
  const sefi::core::ResultCache torn_reader(dir);
  start = Clock::now();
  for (const std::string& key : keys) {
    if (torn_reader.load_fi(key) != nullptr) {
      std::fprintf(stderr, "FATAL: torn entry parsed: %s\n", key.c_str());
      return 1;
    }
  }
  emit("corrupt", entries, 0.0, seconds_since(start),
       torn_reader.telemetry());

  std::filesystem::remove_all(dir);
  return 0;
}
