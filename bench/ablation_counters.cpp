// Ablation: hardware-counter cross-check (paper §IV-D).
//
// The paper validates its two setups by comparing seven hardware
// counters between the Zynq board and the gem5 model, finding ~70% of
// them within acceptable deviation and the instruction-TLB counters
// diverging most (a known gem5/Cortex design difference). Our analog
// compares the same seven counters between the paper-geometry detailed
// model and the scaled campaign geometry, per benchmark — quantifying
// exactly what the cache/TLB scaling changes (and what it doesn't:
// retired instructions and branches must match almost exactly).
#include <cstdio>

#include "bench_common.hpp"
#include "sefi/kernel/kernel.hpp"
#include "sefi/microarch/detailed.hpp"
#include "sefi/workloads/workload.hpp"

namespace {

struct CounterRow {
  std::uint64_t cycles, instructions, branch_misses;
  std::uint64_t l1d_accesses, l1d_misses, l1i_misses;
  std::uint64_t dtlb_misses, itlb_misses;
};

CounterRow measure(const sefi::workloads::Workload& w,
                   const sefi::microarch::DetailedConfig& uarch) {
  sefi::sim::Machine m = sefi::microarch::make_detailed_machine(uarch);
  sefi::kernel::install_system(m, sefi::kernel::build_kernel(),
                               w.build(sefi::workloads::kDefaultInputSeed),
                               sefi::workloads::kWorkloadStackTop);
  m.boot();
  m.run(500'000'000);
  const auto& c = m.counters();
  return {m.cpu().cycles(), m.cpu().instructions(), c.branch_misses,
          c.l1d_accesses,   c.l1d_misses,           c.l1i_misses,
          c.dtlb_misses,    c.itlb_misses};
}

double ratio(std::uint64_t a, std::uint64_t b) {
  if (b == 0) return a == 0 ? 1.0 : 99.0;
  return static_cast<double>(a) / static_cast<double>(b);
}

}  // namespace

int main() {
  std::printf(
      "ABLATION (SIV-D analog): the 7 hardware counters, paper geometry "
      "vs scaled campaign geometry\n(ratio = scaled / paper; 1.00 means "
      "identical)\n\n");
  std::printf("%-14s %7s %7s %7s %7s %7s %7s %7s %7s\n", "Benchmark", "cyc",
              "instr", "br-mis", "L1Dacc", "L1Dmis", "L1Imis", "dTLBm",
              "iTLBm");
  const sefi::microarch::DetailedConfig paper;
  const sefi::microarch::DetailedConfig scaled = sefi::core::scaled_uarch();
  for (const auto* w : sefi::workloads::all_workloads()) {
    const CounterRow a = measure(*w, scaled);
    const CounterRow b = measure(*w, paper);
    std::printf("%-14s %7.2f %7.2f %7.2f %7.2f %7.2f %7.2f %7.2f %7.2f\n",
                w->info().name.c_str(), ratio(a.cycles, b.cycles),
                ratio(a.instructions, b.instructions),
                ratio(a.branch_misses, b.branch_misses),
                ratio(a.l1d_accesses, b.l1d_accesses),
                ratio(a.l1d_misses, b.l1d_misses),
                ratio(a.l1i_misses, b.l1i_misses),
                ratio(a.dtlb_misses, b.dtlb_misses),
                ratio(a.itlb_misses, b.itlb_misses));
  }
  std::printf(
      "\n(paper finding: ~70%% of counters within acceptable deviation "
      "across its two setups, instruction-TLB\n counters diverging most. "
      "Here instr/branch ratios stay ~1.00 while miss counters scale with "
      "geometry.)\n");
  return 0;
}
