// Component micro-benchmarks (google-benchmark): throughput of the hot
// structures behind the campaigns — instruction decode, cache and TLB
// operations, the renamed register file, the PRNG, and whole-machine
// stepping on both models. These guard the simulator's performance,
// which bounds campaign sizes on a given time budget.
#include <benchmark/benchmark.h>

#include "sefi/isa/assembler.hpp"
#include "sefi/kernel/kernel.hpp"
#include "sefi/microarch/cache.hpp"
#include "sefi/microarch/detailed.hpp"
#include "sefi/microarch/regfile.hpp"
#include "sefi/microarch/tlb.hpp"
#include "sefi/support/rng.hpp"
#include "sefi/workloads/workload.hpp"

namespace {

using namespace sefi;  // NOLINT: bench-local convenience

void BM_DecodeInstruction(benchmark::State& state) {
  isa::Instruction inst;
  inst.op = isa::Opcode::kAddi;
  inst.rd = 3;
  inst.rn = 4;
  inst.imm = -42;
  const std::uint32_t word = isa::encode(inst);
  for (auto _ : state) {
    benchmark::DoNotOptimize(isa::decode(word));
  }
}
BENCHMARK(BM_DecodeInstruction);

void BM_CacheHitLookup(benchmark::State& state) {
  microarch::CacheArray cache("bench", {32 * 1024, 32, 4});
  const std::uint32_t addr = 0x1234 & ~31u;
  cache.install(addr, cache.pick_victim(addr), std::vector<std::uint8_t>(32));
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.lookup(addr));
  }
}
BENCHMARK(BM_CacheHitLookup);

void BM_CacheInstallEvict(benchmark::State& state) {
  microarch::CacheArray cache("bench", {4 * 1024, 32, 4});
  const std::vector<std::uint8_t> line(32, 0xAA);
  std::uint32_t addr = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.install(addr, cache.pick_victim(addr),
                                           line));
    addr += 32;
  }
}
BENCHMARK(BM_CacheInstallEvict);

void BM_TlbLookup(benchmark::State& state) {
  microarch::Tlb tlb("bench", 32);
  for (std::uint32_t vpn = 0; vpn < 32; ++vpn) {
    tlb.insert(vpn, {vpn, 0xE});
  }
  std::uint32_t vpn = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tlb.lookup(vpn));
    vpn = (vpn + 1) & 31;
  }
}
BENCHMARK(BM_TlbLookup);

void BM_RegFileWriteRead(benchmark::State& state) {
  microarch::PhysRegFile regs(64, 16);
  unsigned r = 0;
  for (auto _ : state) {
    regs.write(r, r * 3);
    benchmark::DoNotOptimize(regs.read(r));
    r = (r + 1) & 15;
  }
}
BENCHMARK(BM_RegFileWriteRead);

void BM_Xoshiro(benchmark::State& state) {
  support::Xoshiro256 rng(42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.next());
  }
}
BENCHMARK(BM_Xoshiro);

/// Whole-machine stepping throughput; counter "instr/s" is the figure the
/// campaign budgets are built on.
template <bool kDetailed>
void BM_MachineRun(benchmark::State& state) {
  const auto& workload = workloads::workload_by_name("SusanC");
  const isa::Program kernel_image = kernel::build_kernel();
  const isa::Program app = workload.build(workloads::kDefaultInputSeed);
  std::uint64_t instructions = 0;
  for (auto _ : state) {
    sim::Machine machine = kDetailed ? microarch::make_detailed_machine()
                                     : sim::Machine::make_functional();
    kernel::install_system(machine, kernel_image, app,
                           workloads::kWorkloadStackTop);
    machine.boot();
    benchmark::DoNotOptimize(machine.run(500'000'000));
    instructions += machine.cpu().instructions();
  }
  state.counters["instr/s"] = benchmark::Counter(
      static_cast<double>(instructions), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_MachineRun<false>)->Name("BM_MachineRun_Functional");
BENCHMARK(BM_MachineRun<true>)->Name("BM_MachineRun_Detailed");

void BM_WorkloadBuild(benchmark::State& state) {
  const auto& workload = workloads::workload_by_name("RijndaelE");
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        workload.build(workloads::kDefaultInputSeed).size());
  }
}
BENCHMARK(BM_WorkloadBuild);

}  // namespace

BENCHMARK_MAIN();
