// Table II: setup attributes of the two assessment methodologies.
#include <cstdio>

#include "bench_common.hpp"
#include "sefi/report/render.hpp"

int main() {
  const auto config = sefi::bench::lab_config();
  std::printf("%s", sefi::report::render_table2(config).c_str());
  std::printf(
      "\nBeam-only platform inventory (structures fault injection cannot "
      "reach):\n");
  for (const auto& resource : config.beam.platform.resources) {
    std::printf("  %-22s %8.0f bits  P(SysCrash)=%.2f  P(AppCrash)=%.2f\n",
                resource.name.c_str(), resource.bits, resource.p_sys_crash,
                resource.p_app_crash);
  }
  std::printf(
      "\n(paper setup: Cortex-A9 on Zynq-7000 vs gem5; both 32KB 4-way L1, "
      "512KB 8-way L2, Linux 3.14/3.13.\n Campaign geometry here is scaled "
      "with the inputs — see DESIGN.md §2 and core::scaled_uarch().)\n");
  return 0;
}
