// Ablation: FIT_raw calibration (§VI).
//
// Sweeps the configured per-bit cross section and shows that the measured
// FIT_raw tracks it linearly (the calibration is sound), and sweeps the
// session length to show the estimate converging. The paper's measured
// value for the Zynq's 28 nm SRAM was 2.76e-5 FIT/bit.
#include <cstdio>

#include "bench_common.hpp"
#include "sefi/beam/session.hpp"

int main() {
  const auto config = sefi::bench::lab_config();
  sefi::bench::print_campaign_banner(config);

  std::printf("ABLATION: FIT_raw calibration vs configured cross section\n");
  std::printf("%-14s %-16s %-14s\n", "sigma(cm^2/bit)", "measured FIT_raw",
              "ratio to sigma*13e9");
  for (const double sigma : {1e-15, 2e-15, 4e-15, 8e-15}) {
    sefi::beam::BeamConfig beam = config.beam;
    beam.sigma_bit_cm2 = sigma;
    const double measured = sefi::beam::measure_fit_raw_per_bit(beam);
    // A perfect detector would measure sigma * flux_NYC * 1e9.
    const double ideal = sigma * 13.0 * 1e9;
    std::printf("%-14.1e %-16.3e %-14.2f\n", sigma, measured,
                measured / ideal);
  }

  std::printf("\nConvergence with session length (default sigma):\n");
  std::printf("%-10s %-16s %-10s\n", "runs", "measured FIT_raw", "SDC events");
  for (const std::uint64_t runs : {150ull, 300ull, 600ull, 1200ull}) {
    sefi::beam::BeamConfig beam = config.beam;
    beam.runs = runs;
    const auto result = sefi::beam::run_beam_session(
        sefi::workloads::l1_pattern_workload(), beam);
    const double fit_raw =
        result.fit_sdc() / static_cast<double>(sefi::beam::l1_pattern_bits());
    std::printf("%-10llu %-16.3e %-10llu\n",
                static_cast<unsigned long long>(runs), fit_raw,
                static_cast<unsigned long long>(result.sdc));
  }
  std::printf("(paper measurement: 2.76e-05 FIT/bit)\n");
  return 0;
}
