// Fig. 4: fault-injection outcome classification for all 13 benchmarks in
// all 6 components (Masked / SDC / AppCrash / SysCrash shares; AVF = sum
// of non-masked shares).
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "sefi/report/render.hpp"

int main() {
  const auto config = sefi::bench::lab_config();
  sefi::bench::print_campaign_banner(config);
  sefi::core::AssessmentLab lab(config);

  std::vector<sefi::fi::WorkloadFiResult> sweep;
  for (const auto* w : sefi::workloads::all_workloads()) {
    std::printf("injecting %s...\n", w->info().name.c_str());
    sweep.push_back(lab.run_fi(*w));
  }
  std::printf("\n%s", sefi::report::render_fig4(sweep).c_str());
  std::printf(
      "(paper shape: SDCs concentrate in the data-holding structures — L1D "
      "and L2; L1I faults mostly crash;\n TLB vulnerability sits in the "
      "physical-page field; the register file spreads across classes.)\n");
  sefi::bench::print_cache_telemetry(lab);
  return 0;
}
