// Ablation: the un-modeled platform inventory (DESIGN.md §5, paper §VI).
//
// The paper attributes the beam's System-Crash excess to structures the
// simulator cannot model (the Zynq's FPGA-ARM interface, interconnect).
// Removing them from the simulated chip inventory should collapse the
// System-Crash FIT toward what strikes on the modeled arrays alone
// produce — and it does.
#include <cstdio>

#include "bench_common.hpp"
#include "sefi/beam/session.hpp"

int main() {
  const auto config = sefi::bench::lab_config();
  sefi::bench::print_campaign_banner(config);

  std::printf(
      "ABLATION: beam System-Crash FIT with and without the un-modeled "
      "platform inventory\n");
  std::printf("%-14s %12s %12s %12s %12s\n", "Benchmark", "Sys (full)",
              "Sys (none)", "App (full)", "App (none)");
  for (const char* name : {"CRC32", "Dijkstra", "Qsort", "SusanC"}) {
    const auto& w = sefi::workloads::workload_by_name(name);
    sefi::beam::BeamConfig with = config.beam;
    sefi::beam::BeamConfig without = config.beam;
    without.platform = sefi::beam::PlatformModel::none();
    const auto full = sefi::beam::run_beam_session(w, with);
    const auto none = sefi::beam::run_beam_session(w, without);
    std::printf("%-14s %12.2f %12.2f %12.2f %12.2f\n", name,
                full.fit_sys_crash(), none.fit_sys_crash(),
                full.fit_app_crash(), none.fit_app_crash());
  }
  std::printf(
      "\n(the residual 'none' System-Crash rate is the kernel-residency "
      "component: strikes on cached kernel\n state; the paper's Fig. 1 "
      "calls the platform part the beam's over-estimation source.)\n");
  return 0;
}
