// Campaign-executor throughput tracker.
//
// Runs the same fault-injection campaign under a matrix of executor
// configurations and emits one machine-readable JSON line per cell, so
// the perf trajectory of the parallel executor, the checkpoint ladder,
// and the dirty-page delta-restore path can be tracked across commits:
//
//   {"bench":"campaign_throughput","workload":"Qsort","threads":4,
//    "checkpoints":8,"delta_restore":1,"faults_per_component":60,
//    "injections":360,"wall_seconds":1.23,"injections_per_sec":292.7,
//    "replay_cycles":...,"replay_cycles_saved":...,
//    "replay_cycles_saved_ladder":...,"replay_cycles_saved_boot":...,
//    "full_restores":1,"delta_restores":359,
//    "restore_bytes_copied":...,"pages_dirtied_avg":0.031,
//    "speedup_vs_serial":3.1,"full_vs_delta_speedup":1.4}
//
// Note: pages_dirtied_avg is near zero for the scaled workloads — their
// working sets stay resident in the write-back caches, so RAM is almost
// never touched between restores. That is the point of the dirty-page
// path: restore cost tracks state actually touched, not machine size.
//
// Every (threads, checkpoints) cell runs twice: once with delta restore
// forced off (every restore copies the whole machine) and once with it
// on. The delta cell reports `full_vs_delta_speedup` — the wall-clock
// ratio against its own full-restore twin — alongside the restore-bytes
// counters, so both the bytes saved and the time bought are visible in
// one line. The serial baseline is threads=1, checkpoints=1, delta off
// (the classic replay-from-spawn rig); every cell reports its speedup
// against it. All cells produce bit-identical ClassCounts (asserted
// here — a throughput number from a wrong result is worthless).
//
// Ratio fields (`speedup_vs_serial`, `full_vs_delta_speedup`,
// `obs_overhead`, `fastpath_speedup`) appear on a line only when the
// twin they divide by actually ran; a cell with no twin omits the field
// rather than printing a meaningless 0.000.
//
// After the matrix, the heaviest cell runs once per interpreter
// fast-path tier (SEFI_FASTPATH=off/decode/block — DESIGN.md §12).
// Those lines carry `"fastpath":"<tier>"` plus the uop-cache counters,
// and the decode/block cells report `fastpath_speedup` against their
// own off twin; every tier must reproduce the baseline ClassCounts
// bit-for-bit. Matrix cells record the environment's tier (block by
// default) in their own `fastpath` field.
//
// After the matrix, the heaviest cell runs two more times as an
// observability-overhead twin pair: once with every obs channel forced
// off (metrics disabled, tracing disabled) and once with everything on
// (metrics + span tracing + per-injection forensics). Those lines carry
// `"obs":"off"`/`"obs":"on"`; the "on" cell's `obs_overhead` is its
// wall-clock ratio against its "off" twin (1.00 = free). Matrix cells
// report `"obs":"default"` — whatever the environment selected, which
// is metrics on / tracing off unless SEFI_METRICS or SEFI_TRACE say
// otherwise.
//
// After the obs twins, the heaviest delta cell runs once more with the
// HTTP observability plane live (DESIGN.md §16): an in-process
// obs::HttpServer on an ephemeral loopback port, one thread pumping
// poll_once and a scraper thread hammering GET /metrics for the whole
// campaign. That line carries `"obs":"http"` and `obs_http_overhead` —
// its wall-clock ratio against the identical unscraped heaviest matrix
// cell — and must reproduce the baseline ClassCounts bit-for-bit: a
// scrape that perturbs verdicts would disqualify the plane outright.
//
// After the matrix, the heaviest cell runs once per fault-site pruning
// mode (SEFI_PRUNE=off/classify/sample — DESIGN.md §13). Those lines
// carry `"prune":"<mode>"` plus the pruned-site counters, and the
// classify/sample cells report `prune_speedup` against their own off
// twin; classify must reproduce the baseline ClassCounts bit-for-bit,
// while sample must agree with the baseline AVF to within the combined
// confidence intervals. Matrix cells report `"prune":"off"`.
//
// After the matrix, the heaviest cell runs once per hardening mode
// (SEFI_HARDEN=off/dwc/tmr/cfcss/tmr+cfcss — DESIGN.md §15). The off
// twin is the identity transform and must reproduce the baseline
// ClassCounts bit-for-bit; the protected cells inject into a *different
// guest binary* (the hardened twin), so their verdict mix legitimately
// differs — each line carries `"harden":"<mode>"`, the campaign's total
// Detected count, and `harden_overhead`, the wall-clock ratio against
// the off twin (the executor-side price of the longer hardened run).
// Matrix cells report `"harden":"off"`.
//
// Knobs: argv[1] workload name (default Qsort), argv[2] faults per
// component (default 60); SEFI_THREADS caps the largest thread count
// tried (default: hardware concurrency).
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "sefi/core/lab.hpp"
#include "sefi/exec/parallel.hpp"
#include "sefi/fi/campaign.hpp"
#include "sefi/harden/harden.hpp"
#include "sefi/obs/forensics.hpp"
#include "sefi/obs/http.hpp"
#include "sefi/obs/metrics.hpp"
#include "sefi/obs/trace.hpp"
#include "sefi/sim/uop.hpp"
#include "sefi/support/env.hpp"
#include "sefi/workloads/workload.hpp"

namespace {

bool same_counts(const sefi::fi::WorkloadFiResult& a,
                 const sefi::fi::WorkloadFiResult& b) {
  for (const auto kind : sefi::microarch::kAllComponents) {
    const auto& ca = a.component(kind).counts;
    const auto& cb = b.component(kind).counts;
    if (ca.masked != cb.masked || ca.sdc != cb.sdc ||
        ca.app_crash != cb.app_crash || ca.sys_crash != cb.sys_crash) {
      return false;
    }
  }
  return true;
}

/// Derived-ratio inputs for one emitted cell. A zero twin wall means "no
/// twin ran" and the corresponding ratio field is omitted from the JSON
/// line entirely — a ratio against a twin that didn't run is not 0.000,
/// it is undefined.
struct EmitTwins {
  double serial_wall = 0;     ///< speedup_vs_serial denominator source
  double full_twin_wall = 0;  ///< full-restore twin of a delta cell
  double obs_off_wall = 0;    ///< obs=off twin of the obs=on cell
  double http_off_wall = 0;   ///< unscraped twin of the obs=http cell
  double fastpath_off_wall = 0;  ///< fastpath=off twin of a fastpath cell
  double prune_off_wall = 0;  ///< prune=off twin of a classify/sample cell
  double harden_off_wall = 0;  ///< harden=off twin of a protected cell
};

void emit(const sefi::fi::WorkloadFiResult& result, bool delta_restore,
          const char* obs, const char* fastpath, const char* prune,
          const char* harden, const EmitTwins& twins) {
  const sefi::fi::CampaignStats& s = result.stats;
  std::uint64_t detected = 0;
  for (const auto kind : sefi::microarch::kAllComponents) {
    detected += result.component(kind).counts.detected;
  }
  std::printf(
      "{\"bench\":\"campaign_throughput\",\"workload\":\"%s\","
      "\"threads\":%llu,\"checkpoints\":%llu,\"delta_restore\":%d,"
      "\"faults_per_component\":%llu,\"injections\":%llu,"
      "\"wall_seconds\":%.4f,\"injections_per_sec\":%.2f,"
      "\"replay_cycles\":%llu,\"replay_cycles_saved\":%llu,"
      "\"replay_cycles_saved_ladder\":%llu,"
      "\"replay_cycles_saved_boot\":%llu,"
      "\"full_restores\":%llu,\"delta_restores\":%llu,"
      "\"restore_bytes_copied\":%llu,\"pages_dirtied_avg\":%.3f,"
      "\"task_retries\":%llu,\"harness_errors\":%llu,"
      "\"watchdog_hits\":%llu,\"obs\":\"%s\",\"fastpath\":\"%s\","
      "\"uop_hits\":%llu,\"uop_decode_hits\":%llu,\"uop_misses\":%llu,"
      "\"uop_invalidations\":%llu,\"guest_mips\":%.1f,"
      "\"prune\":\"%s\",\"pruned_sites\":%llu,\"live_sites\":%llu,"
      "\"pruned_fraction\":%.3f,\"harden\":\"%s\",\"detected\":%llu",
      result.workload.c_str(), static_cast<unsigned long long>(s.threads),
      static_cast<unsigned long long>(s.checkpoints), delta_restore ? 1 : 0,
      static_cast<unsigned long long>(s.injections / 6),
      static_cast<unsigned long long>(s.injections), s.wall_seconds,
      s.injections_per_sec,
      static_cast<unsigned long long>(s.replay_cycles),
      static_cast<unsigned long long>(s.replay_cycles_saved),
      static_cast<unsigned long long>(s.replay_cycles_saved_ladder),
      static_cast<unsigned long long>(s.replay_cycles_saved_boot),
      static_cast<unsigned long long>(s.full_restores),
      static_cast<unsigned long long>(s.delta_restores),
      static_cast<unsigned long long>(s.restore_bytes_copied),
      s.pages_dirtied_avg,
      static_cast<unsigned long long>(s.task_retries),
      static_cast<unsigned long long>(s.harness_errors),
      static_cast<unsigned long long>(s.watchdog_hits), obs, fastpath,
      static_cast<unsigned long long>(s.uop_hits),
      static_cast<unsigned long long>(s.uop_decode_hits),
      static_cast<unsigned long long>(s.uop_misses),
      static_cast<unsigned long long>(s.uop_invalidations), s.guest_mips,
      prune, static_cast<unsigned long long>(s.pruned_sites),
      static_cast<unsigned long long>(s.live_sites), s.pruned_fraction,
      harden, static_cast<unsigned long long>(detected));
  const double wall = s.wall_seconds;
  if (twins.serial_wall > 0 && wall > 0) {
    std::printf(",\"speedup_vs_serial\":%.3f", twins.serial_wall / wall);
  }
  if (twins.full_twin_wall > 0 && wall > 0) {
    std::printf(",\"full_vs_delta_speedup\":%.3f",
                twins.full_twin_wall / wall);
  }
  if (twins.obs_off_wall > 0 && wall > 0) {
    std::printf(",\"obs_overhead\":%.3f", wall / twins.obs_off_wall);
  }
  if (twins.http_off_wall > 0 && wall > 0) {
    std::printf(",\"obs_http_overhead\":%.3f", wall / twins.http_off_wall);
  }
  if (twins.fastpath_off_wall > 0 && wall > 0) {
    std::printf(",\"fastpath_speedup\":%.3f",
                twins.fastpath_off_wall / wall);
  }
  if (twins.prune_off_wall > 0 && wall > 0) {
    std::printf(",\"prune_speedup\":%.3f", twins.prune_off_wall / wall);
  }
  if (twins.harden_off_wall > 0 && wall > 0) {
    std::printf(",\"harden_overhead\":%.3f", wall / twins.harden_off_wall);
  }
  std::printf("}\n");
  std::fflush(stdout);
}

/// Switches the interpreter fast-path tier for campaigns started after
/// this call: Cpu reads SEFI_FASTPATH at construction, and every machine
/// in run_fi_campaign is constructed inside the call.
void set_fastpath_env(const char* tier) {
  ::setenv("SEFI_FASTPATH", tier, 1);
  sefi::support::env::refresh();
}

}  // namespace

int main(int argc, char** argv) {
  const std::string name = argc > 1 ? argv[1] : "Qsort";
  const std::uint64_t faults =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 60;

  sefi::fi::CampaignConfig config;
  config.rig.uarch = sefi::core::scaled_uarch();
  config.faults_per_component = faults;

  const std::size_t hw = sefi::exec::resolve_threads(
      sefi::support::env::u64("SEFI_THREADS", 0), SIZE_MAX);

  // Cells: serial baseline, ladder-only, threads-only, both combined.
  std::vector<std::pair<std::uint64_t, std::uint64_t>> cells = {{1, 1},
                                                                {1, 8}};
  if (hw > 1) {
    cells.emplace_back(hw, 1);
    cells.emplace_back(hw, 8);
  }

  // The whole matrix runs under the environment's fast-path tier (block
  // unless SEFI_FASTPATH overrides it); each line records which.
  const char* matrix_tier =
      sefi::sim::fastpath_name(sefi::sim::fastpath_from_env());

  const auto& workload = sefi::workloads::workload_by_name(name);
  double serial_wall = 0;
  double heavy_delta_wall = 0;  ///< last (heaviest) delta cell of the matrix
  bool have_baseline = false;
  sefi::fi::WorkloadFiResult baseline;
  for (const auto& [threads, checkpoints] : cells) {
    config.threads = threads;
    config.checkpoints = checkpoints;
    double full_twin_wall = 0;
    for (const bool delta : {false, true}) {
      config.rig.delta_restore = delta;
      const sefi::fi::WorkloadFiResult result =
          sefi::fi::run_fi_campaign(workload, config);
      if (!have_baseline) {
        have_baseline = true;
        serial_wall = result.stats.wall_seconds;
        baseline = result;
      } else if (!same_counts(baseline, result)) {
        std::fprintf(stderr,
                     "FATAL: threads=%llu checkpoints=%llu delta=%d diverged "
                     "from the serial baseline\n",
                     static_cast<unsigned long long>(threads),
                     static_cast<unsigned long long>(checkpoints),
                     delta ? 1 : 0);
        return 1;
      }
      if (!delta) full_twin_wall = result.stats.wall_seconds;
      if (delta) heavy_delta_wall = result.stats.wall_seconds;
      EmitTwins twins;
      twins.serial_wall = serial_wall;
      twins.full_twin_wall = delta ? full_twin_wall : 0.0;
      emit(result, delta, "default", matrix_tier, "off", "off", twins);
    }
  }

  // Fast-path twins: the heaviest cell, once per tier. The off run is the
  // pre-uop-cache interpreter; decode and block report their wall-clock
  // speedup against it. Tiers are toggled through the real env knob so
  // the bench exercises the same wiring campaigns use, and every tier
  // must reproduce the baseline ClassCounts bit-for-bit — a fast path
  // that changes verdicts is a broken fast path, not a fast one.
  config.threads = cells.back().first;
  config.checkpoints = cells.back().second;
  config.rig.delta_restore = true;
  double fastpath_off_wall = 0;
  for (const char* tier : {"off", "decode", "block"}) {
    set_fastpath_env(tier);
    const sefi::fi::WorkloadFiResult result =
        sefi::fi::run_fi_campaign(workload, config);
    if (!same_counts(baseline, result)) {
      std::fprintf(stderr,
                   "FATAL: fastpath=%s diverged from the baseline\n", tier);
      return 1;
    }
    if (std::string(tier) == "off") {
      fastpath_off_wall = result.stats.wall_seconds;
    }
    EmitTwins twins;
    twins.serial_wall = serial_wall;
    twins.fastpath_off_wall =
        std::string(tier) == "off" ? 0.0 : fastpath_off_wall;
    emit(result, true, "default", tier, "off", "off", twins);
  }
  ::unsetenv("SEFI_FASTPATH");
  sefi::support::env::refresh();

  // Prune twins: the heaviest cell, once per pruning mode. The off run
  // is the exhaustive executor; classify and sample report their
  // wall-clock speedup against it. Classify must reproduce the baseline
  // ClassCounts bit-for-bit (pruned sites are *proven* Masked); sample
  // only has to land inside the combined confidence intervals.
  config.threads = cells.back().first;
  config.checkpoints = cells.back().second;
  config.rig.delta_restore = true;
  double prune_off_wall = 0;
  sefi::fi::WorkloadFiResult prune_off_result;
  for (const char* mode : {"off", "classify", "sample"}) {
    config.prune = sefi::fi::prune_mode_from_name(mode);
    const sefi::fi::WorkloadFiResult result =
        sefi::fi::run_fi_campaign(workload, config);
    const std::string mode_name(mode);
    if (mode_name == "off") {
      prune_off_wall = result.stats.wall_seconds;
      prune_off_result = result;
      if (!same_counts(baseline, result)) {
        std::fprintf(stderr,
                     "FATAL: prune=off twin diverged from the baseline\n");
        return 1;
      }
    } else if (mode_name == "classify") {
      if (!same_counts(baseline, result)) {
        std::fprintf(stderr,
                     "FATAL: prune=classify diverged from the baseline\n");
        return 1;
      }
    } else {
      for (const auto kind : sefi::microarch::kAllComponents) {
        const auto& sampled = result.component(kind);
        const auto& exhaustive = prune_off_result.component(kind);
        const double gap = sampled.avf() - exhaustive.avf();
        const double slack =
            sampled.error_margin + exhaustive.error_margin + 1e-9;
        if (gap > slack || -gap > slack) {
          std::fprintf(stderr,
                       "FATAL: prune=sample AVF for %s outside the combined "
                       "confidence interval (gap %.4f, slack %.4f)\n",
                       sefi::microarch::component_name(kind).c_str(), gap,
                       slack);
          return 1;
        }
      }
    }
    EmitTwins twins;
    twins.serial_wall = serial_wall;
    twins.prune_off_wall = mode_name == "off" ? 0.0 : prune_off_wall;
    emit(result, true, "default", matrix_tier, mode, "off", twins);
  }
  config.prune = sefi::fi::PruneMode::kOff;

  // Hardening twins: the heaviest cell, once per protection level. The
  // off twin is the identity transform — it must reproduce the baseline
  // ClassCounts bit-for-bit. The protected twins inject into the
  // hardened guest binary, so their counts are their own; what they
  // track across commits is harden_overhead (executor wall-clock vs the
  // off twin — longer golden windows, more sites, same rig machinery)
  // and the Detected tally the new verdict class produces.
  config.threads = cells.back().first;
  config.checkpoints = cells.back().second;
  config.rig.delta_restore = true;
  double harden_off_wall = 0;
  for (const auto mode : sefi::harden::kAllHardenModes) {
    config.rig.harden = mode;
    const sefi::fi::WorkloadFiResult result =
        sefi::fi::run_fi_campaign(workload, config);
    const bool is_off = mode == sefi::harden::HardenMode::kOff;
    if (is_off) {
      harden_off_wall = result.stats.wall_seconds;
      if (!same_counts(baseline, result)) {
        std::fprintf(stderr,
                     "FATAL: harden=off twin diverged from the baseline\n");
        return 1;
      }
    }
    EmitTwins twins;
    twins.serial_wall = serial_wall;
    twins.harden_off_wall = is_off ? 0.0 : harden_off_wall;
    emit(result, true, "default", matrix_tier, "off",
         sefi::harden::harden_mode_name(mode).c_str(), twins);
  }
  config.rig.harden = sefi::harden::HardenMode::kOff;

  // Observability-overhead twins: the heaviest cell of the matrix, run
  // once with every obs channel forced off and once with all of them on
  // (metrics + span tracing + per-injection forensics buffered/written
  // for real). Toggled in-process via Registry::set_enabled and
  // Tracer::enable so both sides share one binary and one warmed page
  // cache; the trace buffer is dropped unflushed and the forensics file
  // removed — only the timing matters here.
  config.threads = cells.back().first;
  config.checkpoints = cells.back().second;
  config.rig.delta_restore = true;
  sefi::obs::Registry& registry = sefi::obs::Registry::instance();
  sefi::obs::Tracer& tracer = sefi::obs::Tracer::instance();

  registry.set_enabled(false);
  tracer.disable();
  const sefi::fi::WorkloadFiResult off =
      sefi::fi::run_fi_campaign(workload, config);
  if (!same_counts(baseline, off)) {
    std::fprintf(stderr, "FATAL: obs=off twin diverged from the baseline\n");
    return 1;
  }
  {
    EmitTwins twins;
    twins.serial_wall = serial_wall;
    emit(off, true, "off", matrix_tier, "off", "off", twins);
  }

  registry.set_enabled(true);
  tracer.reset();
  tracer.enable("sefi_bench_obs_trace.json");
  const std::string forensics_path = "sefi_bench_obs_forensics.jsonl";
  {
    sefi::obs::ForensicsSink sink(forensics_path);
    config.forensics = &sink;
    const sefi::fi::WorkloadFiResult on =
        sefi::fi::run_fi_campaign(workload, config);
    config.forensics = nullptr;
    if (!same_counts(baseline, on)) {
      std::fprintf(stderr, "FATAL: obs=on twin diverged from the baseline\n");
      return 1;
    }
    EmitTwins twins;
    twins.serial_wall = serial_wall;
    twins.obs_off_wall = off.stats.wall_seconds;
    emit(on, true, "on", matrix_tier, "off", "off", twins);
  }
  tracer.disable();
  tracer.reset();
  std::remove(forensics_path.c_str());

  // HTTP-scrape twin: the heaviest delta cell once more with the §16
  // plane live. The serve CLI never runs the server from a thread (the
  // coordinator loop pumps it — fork safety); the bench has no forks,
  // so threads let a scraper poll GET /metrics every 10 ms — orders of
  // magnitude faster than any real Prometheus interval — hitting the
  // registry's merge-on-scrape path concurrently with the executor hot
  // loop. obs_http_overhead divides by the unscraped heaviest matrix
  // cell — identical config, metrics on, no server. (A no-sleep scrape
  // loop would just measure CPU theft from the executor, not the
  // plane's cost.)
  config.threads = cells.back().first;
  config.checkpoints = cells.back().second;
  config.rig.delta_restore = true;
  registry.set_enabled(true);
  {
    sefi::obs::HttpServer server;
    if (!server.start(0)) {
      std::fprintf(stderr,
                   "FATAL: obs=http twin could not bind a loopback port\n");
      return 1;
    }
    server.set_handler([&registry](const sefi::obs::HttpRequest& request) {
      sefi::obs::HttpResponse response;
      if (request.path == "/metrics") {
        response.content_type = "text/plain; version=0.0.4; charset=utf-8";
        response.body = registry.expose_text();
      } else {
        response.status = 404;
        response.body = "not found\n";
      }
      return response;
    });
    std::atomic<bool> stop{false};
    std::atomic<std::uint64_t> scrapes{0};
    std::thread pump([&] {
      while (!stop.load(std::memory_order_relaxed)) server.poll_once(10);
    });
    std::thread scraper([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        const auto response = sefi::obs::http_get(server.port(), "/metrics");
        if (response && response->status == 200 && !response->body.empty()) {
          scrapes.fetch_add(1, std::memory_order_relaxed);
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
      }
    });
    const sefi::fi::WorkloadFiResult scraped =
        sefi::fi::run_fi_campaign(workload, config);
    stop.store(true);
    scraper.join();
    pump.join();
    server.stop();
    if (!same_counts(baseline, scraped)) {
      std::fprintf(stderr,
                   "FATAL: obs=http twin diverged from the baseline\n");
      return 1;
    }
    if (scrapes.load() == 0) {
      std::fprintf(stderr,
                   "FATAL: obs=http twin finished without a single "
                   "successful scrape\n");
      return 1;
    }
    EmitTwins twins;
    twins.serial_wall = serial_wall;
    twins.http_off_wall = heavy_delta_wall;
    emit(scraped, true, "http", matrix_tier, "off", "off", twins);
  }
  return 0;
}
