// Fig. 5: fault-injection FIT rates — per-component AVFs converted with
// FIT = FIT_raw x size x AVF, FIT_raw measured by beaming the L1-pattern
// calibration benchmark (§VI).
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "sefi/report/render.hpp"

int main() {
  const auto config = sefi::bench::lab_config();
  sefi::bench::print_campaign_banner(config);
  sefi::core::AssessmentLab lab(config);

  std::printf("calibrating FIT_raw (beaming L1Pattern)...\n");
  const double fit_raw = lab.fit_raw_per_bit();

  std::vector<sefi::report::FiFitRow> rows;
  for (const auto* w : sefi::workloads::all_workloads()) {
    std::printf("injecting %s...\n", w->info().name.c_str());
    rows.push_back({w->info().name, lab.convert_to_fit(lab.run_fi(*w))});
  }
  std::printf("\n%s", sefi::report::render_fig5(rows, fit_raw).c_str());
  std::printf("(paper FIT_raw: 2.76e-05 FIT/bit for the Zynq's 28nm SRAM)\n");
  sefi::bench::print_cache_telemetry(lab);
  return 0;
}
