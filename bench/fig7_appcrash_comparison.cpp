// Fig. 7: Application Crash FIT comparison between beam and fault
// injection.
#include <cstdio>

#include "bench_common.hpp"
#include "sefi/report/render.hpp"

int main() {
  const auto config = sefi::bench::lab_config();
  sefi::bench::print_campaign_banner(config);
  sefi::core::AssessmentLab lab(config);
  const auto sweep = lab.compare_all();
  std::printf(
      "%s",
      sefi::report::render_fold_figure(
          "FIG 7: Application Crash FIT comparison, beam vs fault injection",
          "app", sweep)
          .c_str());
  std::printf(
      "(paper: beam is always higher, from 1.5x to ~500x — crashes are "
      "triggered by logic/control state the\n simulator does not model; "
      "StringSearch, MatMul and Qsort exceed two orders of magnitude.)\n");
  sefi::bench::print_cache_telemetry(lab);
  return 0;
}
