// Table I: simulation throughput of the abstraction-layer models.
//
// Four rows, as in the paper:
//   Software (native)  — a host-native compute loop (cycles ~ iterations)
//   Architecture       — SEFI functional ("atomic") model
//   Microarchitecture  — SEFI detailed model
//   RTL                — a gate-level proxy: a structurally-modeled 32-bit
//                        ripple-carry ALU + register netlist evaluated
//                        gate by gate each cycle (we have no full RTL
//                        core; the proxy reproduces the *cost regime* of
//                        event-free gate evaluation, DESIGN.md §4)
#include <chrono>
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "sefi/kernel/kernel.hpp"
#include "sefi/microarch/detailed.hpp"
#include "sefi/report/render.hpp"
#include "sefi/workloads/workload.hpp"

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// Host-native row: a simple checksum loop, one "cycle" per iteration.
double native_cycles_per_second() {
  volatile std::uint64_t sink = 0;
  std::uint64_t acc = 0x9e3779b97f4a7c15ULL;
  const std::uint64_t iterations = 400'000'000;
  const auto start = Clock::now();
  for (std::uint64_t i = 0; i < iterations; ++i) {
    acc = acc * 6364136223846793005ULL + 1442695040888963407ULL;
  }
  sink = acc;
  (void)sink;
  return static_cast<double>(iterations) / seconds_since(start);
}

/// Runs a guest workload on `machine` and returns simulated cycles/sec.
double guest_cycles_per_second(sefi::sim::Machine machine) {
  const auto& workload = sefi::workloads::workload_by_name("CRC32");
  sefi::kernel::install_system(machine, sefi::kernel::build_kernel(),
                               workload.build(sefi::workloads::kDefaultInputSeed),
                               sefi::workloads::kWorkloadStackTop);
  double total_cycles = 0;
  const auto start = Clock::now();
  do {
    machine.boot();
    machine.run(500'000'000);
    total_cycles += static_cast<double>(machine.cpu().cycles());
  } while (seconds_since(start) < 1.0);
  return total_cycles / seconds_since(start);
}

// --- gate-level RTL proxy ---------------------------------------------------

/// A NAND-only netlist evaluated one gate at a time. The circuit is a
/// 32-bit ripple-carry adder whose output feeds back into register A —
/// a miniature datapath "RTL" model.
class GateNetlist {
 public:
  GateNetlist() {
    // Inputs: 64 wires (two 32-bit registers), constant-0 wire.
    a_wires_.resize(32);
    b_wires_.resize(32);
    for (int i = 0; i < 32; ++i) {
      a_wires_[i] = alloc_input();
      b_wires_[i] = alloc_input();
    }
    int carry = alloc_input();  // carry-in, constant 0
    carry_in_ = carry;
    for (int i = 0; i < 32; ++i) {
      // Full adder from 9 NAND gates.
      const int a = a_wires_[i];
      const int b = b_wires_[i];
      const int n1 = nand(a, b);
      const int n2 = nand(a, n1);
      const int n3 = nand(b, n1);
      const int axb = nand(n2, n3);  // a XOR b
      const int n4 = nand(axb, carry);
      const int n5 = nand(axb, n4);
      const int n6 = nand(carry, n4);
      sum_wires_.push_back(nand(n5, n6));  // sum
      carry = nand(n1, n4);                // carry-out
    }
  }

  /// One clock: evaluate every gate, latch sum back into register A.
  void cycle() {
    for (const Gate& gate : gates_) {
      values_[gate.out] = !(values_[gate.in0] && values_[gate.in1]);
    }
    for (int i = 0; i < 32; ++i) {
      values_[a_wires_[i]] = values_[sum_wires_[i]];
    }
  }

  void set_b(std::uint32_t value) {
    for (int i = 0; i < 32; ++i) {
      values_[b_wires_[i]] = ((value >> i) & 1) != 0;
    }
    values_[carry_in_] = false;
  }

  std::uint32_t read_a() const {
    std::uint32_t out = 0;
    for (int i = 0; i < 32; ++i) {
      if (values_[a_wires_[i]]) out |= 1u << i;
    }
    return out;
  }

  std::size_t gate_count() const { return gates_.size(); }

 private:
  struct Gate {
    int in0, in1, out;
  };

  int alloc_input() {
    values_.push_back(false);
    return static_cast<int>(values_.size() - 1);
  }

  int nand(int in0, int in1) {
    values_.push_back(false);
    const int out = static_cast<int>(values_.size() - 1);
    gates_.push_back({in0, in1, out});
    return out;
  }

  std::vector<Gate> gates_;
  std::vector<char> values_;
  std::vector<int> a_wires_, b_wires_, sum_wires_;
  int carry_in_ = 0;
};

double rtl_proxy_cycles_per_second() {
  GateNetlist netlist;
  netlist.set_b(0x01234567);
  // The paper's RTL row reflects a full CPU core (~hundreds of thousands
  // of gates); our proxy datapath has ~300. Normalize: report the rate at
  // which this netlist could simulate a core of kCoreGates gates.
  constexpr double kCoreGates = 250'000.0;
  const double scale =
      static_cast<double>(netlist.gate_count()) / kCoreGates;
  std::uint64_t cycles = 0;
  const auto start = Clock::now();
  do {
    for (int i = 0; i < 1000; ++i) netlist.cycle();
    cycles += 1000;
  } while (seconds_since(start) < 1.0);
  if (netlist.read_a() == 0xdeadbeef) std::printf("!");  // defeat DCE
  return static_cast<double>(cycles) / seconds_since(start) * scale;
}

}  // namespace

int main() {
  const auto config = sefi::bench::lab_config();
  sefi::bench::print_campaign_banner(config);

  std::vector<sefi::report::ThroughputRow> rows;
  std::printf("measuring native host loop...\n");
  rows.push_back({"Software (native)", "host processor",
                  native_cycles_per_second()});
  std::printf("measuring functional (atomic) model...\n");
  rows.push_back({"Architecture", "SEFI functional model",
                  guest_cycles_per_second(
                      sefi::sim::Machine::make_functional())});
  std::printf("measuring detailed model...\n");
  rows.push_back({"Microarchitecture", "SEFI detailed model",
                  guest_cycles_per_second(
                      sefi::microarch::make_detailed_machine())});
  std::printf("measuring gate-level RTL proxy...\n");
  rows.push_back({"RTL", "gate-level ALU netlist proxy",
                  rtl_proxy_cycles_per_second()});
  std::printf("\n%s", sefi::report::render_table1(rows).c_str());
  std::printf(
      "(paper reference: 2e9 / 2e7 / 2e5 / 6e2 — each layer ~2 orders of "
      "magnitude slower)\n");
  return 0;
}
