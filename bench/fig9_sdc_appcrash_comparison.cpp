// Fig. 9: combined SDC + Application Crash FIT comparison — the paper's
// "same hardware" view (both classes originate in the CPU core).
#include <cstdio>

#include "bench_common.hpp"
#include "sefi/report/render.hpp"

int main() {
  const auto config = sefi::bench::lab_config();
  sefi::bench::print_campaign_banner(config);
  sefi::core::AssessmentLab lab(config);
  const auto sweep = lab.compare_all();
  std::printf("%s",
              sefi::report::render_fold_figure(
                  "FIG 9: SDC + Application Crash FIT comparison, beam vs "
                  "fault injection",
                  "sdc+app", sweep)
                  .c_str());
  std::printf(
      "(paper: combining the classes shrinks the per-benchmark gaps — "
      "MatMul and Qsort fall from ~100x to <10x,\n and JpegD/RijndaelE/"
      "RijndaelD reach 1.08x-1.26x.)\n");
  sefi::bench::print_cache_telemetry(lab);
  return 0;
}
